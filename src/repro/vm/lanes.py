"""Lane-batched trial execution: stacked world buffers over one stream.

A fork-at-injection bucket (PR 7) holds trials whose fault plans share
a fork epoch; the scalar tier re-plays the golden armed prefix — fork
epoch to injection point — once per trial.  The lane tier amortises
that prefix across a *window* of same-bucket trials:

* the worker's golden cursor advances the shared instruction stream
  once per window, pausing at each trial's **occurrence cut** — the
  marked instruction right before the trial's stream-first fault
  occurrence (:func:`stream_cut` orders occurrences by their golden
  reach epoch, then rank, exactly the order the shared stream meets
  them);
* at each cut one **lane** of the :class:`LaneStack` captures the
  paused world: every rank's flat memory buffer becomes one row of a
  ``(lanes, words)`` NumPy array (one bulk slice copy per plane), with
  the small allocator metadata carried per row;
* the trial then arms its faults and runs on the live machines from
  the paused position — the real interpreter, so bit-identity with the
  scalar tier holds by construction — and its lane row restores the
  shared world afterwards so the stream can advance to the next cut.

A lane **retires** to the scalar tier (:exc:`LaneBail`, counted as
``repro_lane_retirements_total``) when its cut cannot be reached on the
shared stream: the cut lies behind the current position (out-of-order
plan), the golden stream ends first (profile mismatch), or the marked
cut instruction is a terminator whose signal swallows the pause.  A
lane retires *early* when the trial's world re-converges with the
golden fingerprints (PR 5 pruning, ``repro_lane_reconverged_total``) —
the golden tail is spliced instead of executed.

The pause itself (:attr:`Machine._pause_armed`) rides the existing
injection machinery: ``inj_next`` is set to the cut occurrence with an
*empty* armed-fault list, so the matched instruction executes normally
(armed-mode dispatch guarantees it is single-stepped, never skipped by
a fused segment or tier-2 bulk count), signals ``SIG_INJECT``, and the
run loop stops right after it with the quantum's leftover budget saved
for an exact mid-epoch resume (:class:`~repro.mpi.scheduler.Scheduler`
``cut``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

#: sort key for plans whose cut the golden stream never reaches —
#: greater than any real (epoch, rank, occurrence) triple
_UNREACHABLE = (float("inf"), float("inf"), float("inf"))


class LaneBail(ReproError):
    """A lane retired to the scalar tier; the trial re-runs there."""


def reach_epoch(epoch_counters: Sequence[Sequence[int]], rank: int,
                occurrence: int) -> Optional[int]:
    """First golden epoch whose counter on ``rank`` is >= ``occurrence``.

    ``epoch_counters[e][rank]`` is the rank's occurrence counter after
    ``e`` completed epochs (entry 0 is all zeros); counters are
    monotone, so this is a bisection.  None if the golden stream ends
    before the occurrence — a fault plan drawn against a different
    profile.
    """
    n = len(epoch_counters)
    if n == 0 or epoch_counters[-1][rank] < occurrence:
        return None
    lo = bisect_left(epoch_counters, True,
                     key=lambda row: row[rank] >= occurrence)
    return lo


def stream_cut(faults: Sequence,
               epoch_counters: Sequence[Sequence[int]]
               ) -> Optional[Tuple[int, int, int]]:
    """The plan's first cut in shared-stream order.

    Returns ``(rank, target, reach)``: the stream-first occurrence's
    rank, the pause target ``occurrence - 1`` (the marked instruction
    right *before* it — arming the faults there fires them exactly),
    and the backstop epoch by which the occurrence is reached.  Stream
    order is ``(reach epoch, rank, occurrence)``: the scheduler runs
    ranks in index order within an epoch, so of two occurrences first
    reached in the same epoch the lower rank's executes first.  None if
    any occurrence is unreachable on this profile.
    """
    best = None
    for f in faults:
        reach = reach_epoch(epoch_counters, f.rank, f.occurrence)
        if reach is None:
            return None
        key = (reach, f.rank, f.occurrence)
        if best is None or key < best:
            best = key
    reach, rank, occurrence = best
    return rank, occurrence - 1, reach


def cut_sort_key(faults: Sequence,
                 epoch_counters: Sequence[Sequence[int]]) -> tuple:
    """Batch-planning sort key: trials ordered by their first cut.

    Within a fork bucket, draining trials in this order keeps every cut
    at or ahead of the shared stream position, so no lane retires for
    being out of order.  Unreachable plans sort last (they retire to
    the scalar tier anyway).
    """
    best = _UNREACHABLE
    for f in faults:
        reach = reach_epoch(epoch_counters, f.rank, f.occurrence)
        if reach is None:
            return _UNREACHABLE
        key = (reach, f.rank, f.occurrence)
        if key < best:
            best = key
    return best


class LaneStack:
    """``(lanes, words)`` world buffers: one row per paused trial world.

    Per rank, three stacked planes mirror the flat
    :class:`~repro.vm.memory.ProcessMemory` buffers — ``int64`` cells,
    ``uint8`` float-kind tags, ``uint8`` validity — so capturing or
    restoring a lane is one bulk slice copy per plane.  The allocator
    metadata (sp/hp, heap blocks, free lists, live words) is small and
    rides per row by value.
    """

    def __init__(self, width: int, capacities: Sequence[int]) -> None:
        if width < 2:
            raise ValueError(f"lane width must be >= 2, got {width}")
        self.width = width
        self.cells: List[np.ndarray] = [
            np.zeros((width, cap), dtype=np.int64) for cap in capacities
        ]
        self.fkind: List[np.ndarray] = [
            np.zeros((width, cap), dtype=np.uint8) for cap in capacities
        ]
        self.valid: List[np.ndarray] = [
            np.zeros((width, cap), dtype=np.uint8) for cap in capacities
        ]
        #: per-lane allocator metadata, one tuple per rank
        self.alloc: List[Optional[list]] = [None] * width

    def capture(self, lane: int, machines: Sequence) -> None:
        """Stack every rank's live memory into row ``lane``."""
        alloc = []
        for r, m in enumerate(machines):
            mem = m.memory
            self.cells[r][lane, :] = mem.cells_i
            self.fkind[r][lane, :] = np.frombuffer(mem.fkind, dtype=np.uint8)
            self.valid[r][lane, :] = np.frombuffer(mem.valid, dtype=np.uint8)
            alloc.append((
                mem.sp, mem.hp, dict(mem.heap_blocks),
                {size: list(b) for size, b in mem.free_lists.items()},
                mem.live_words,
            ))
        self.alloc[lane] = alloc

    def restore(self, lane: int, machines: Sequence) -> None:
        """Overwrite every rank's memory with row ``lane``, bit-exactly.

        The full planes are copied back (stale garbage under
        ``valid == 0`` included), so the restored world is the captured
        byte state by construction — no dirty tracking involved.
        """
        alloc = self.alloc[lane]
        if alloc is None:
            raise ReproError(f"lane {lane} was never captured")
        for r, m in enumerate(machines):
            mem = m.memory
            if mem._tx is not None:
                raise ReproError(
                    f"rank {r}: cannot restore a lane during a COW "
                    f"transaction")
            mem.cells_i[:] = self.cells[r][lane]
            mem.fkind[:] = self.fkind[r][lane].tobytes()
            mem.valid[:] = self.valid[r][lane].tobytes()
            sp, hp, blocks, free_lists, live_words = alloc[r]
            mem.sp = sp
            mem.sp_peak = sp
            mem.hp = hp
            mem.heap_blocks = dict(blocks)
            mem.free_lists = {s: list(b) for s, b in free_lists.items()}
            mem.live_words = live_words
