"""Deterministic in-program random numbers.

Simulated applications (notably the Monte Carlo transport analog of MCB)
need randomness that is bit-reproducible across golden and faulty runs, so
outcome classification can compare outputs meaningfully.  Each simulated
process owns one :class:`Lcg64` seeded from ``(program seed, rank)``.

This is Knuth's MMIX LCG; quality is irrelevant here — determinism and
speed are what matter.
"""

from __future__ import annotations

_MULT = 6364136223846793005
_INC = 1442695040888963407
_MASK = (1 << 64) - 1
#: 2^-53, to map 53 random bits onto [0, 1).
_INV53 = 1.0 / (1 << 53)


class Lcg64:
    """64-bit linear congruential generator with a splittable seed."""

    __slots__ = ("state",)

    def __init__(self, seed: int, stream: int = 0) -> None:
        # Mix the stream id in so per-rank generators are decorrelated.
        self.state = (seed * 0x9E3779B97F4A7C15 + stream * 0xBF58476D1CE4E5B9 + 1) & _MASK
        # Warm up to diffuse small seeds.
        for _ in range(3):
            self.next_u64()

    def next_u64(self) -> int:
        self.state = (self.state * _MULT + _INC) & _MASK
        return self.state

    def next_float(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) * _INV53

    def next_int(self, bound: int) -> int:
        """Uniform int in [0, bound); bound must be positive."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound
