"""Warm-world cache: amortized snapshot restores for batched trials.

Snapshot fast-forward (:mod:`repro.vm.snapshot`) rebuilds every rank's
memory from the sparse snapshot encoding on *each* trial — a zero-fill
of the full address space plus per-region reconstruction.  When the
campaign scheduler batches trials by their nearest-preceding snapshot,
consecutive trials on a worker restore the *same* snapshot, so that
reconstruction is pure waste after the first time.

The cache keeps, per snapshot cycle, a dense per-rank memory template
(int64 cell array + fkind/validity bytes) materialized right after the first cold
restore — i.e. the exact observable state `restore_state` would
produce.  Later trials on the same snapshot clone the template with two
bulk copies instead of re-running the sparse reconstruction.  All other
world state (frames, registers, shadow tables, RNG, MPI runtime, trace
prefix) still restores through the one shared code path, so a warm
clone is bit-identical to a cold restore by construction — and the
equivalence suite asserts it.

The template store is bounded by *resident pages* — the live memory
footprint of the cached worlds — not by entry count, so one cache knob
means the same thing for a 4-rank toy app and a deep-heap solver.
``REPRO_WORLD_CACHE_PAGES`` sets the page budget directly; when unset
(0), the budget derives from the legacy ``REPRO_WORLD_CACHE`` world
count times each world's own footprint, preserving the old behaviour.
The cache is per-process: forked pool workers each warm their own
cache, which is exactly what snapshot-locality batching optimises for.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..core.settings import DEFAULT_WORLD_CACHE, current_settings
from ..obs import runtime as _obs
from .snapshot import WorldSnapshot, restore_world

#: default number of materialized worlds retained per process
DEFAULT_WORLDS = DEFAULT_WORLD_CACHE


def default_world_cache_limit(requested: Optional[int] = None) -> int:
    """Worlds retained: argument, else REPRO_WORLD_CACHE, else 4.

    ``0`` disables warm cloning entirely (every restore is cold).
    """
    if requested is not None:
        return max(0, int(requested))
    return current_settings().world_cache


def default_world_cache_pages(requested: Optional[int] = None) -> int:
    """Resident-page budget: argument, else REPRO_WORLD_CACHE_PAGES.

    ``0`` (the default) means "no explicit page budget": the cache
    falls back to the world-count limit, each entry weighted by its own
    footprint.
    """
    if requested is not None:
        return max(0, int(requested))
    return current_settings().world_cache_pages


def _resident_pages(mem) -> int:
    """Live resident pages of one rank's memory: stack + heap extent."""
    shift = mem.page_shift
    mask = (1 << shift) - 1
    pages = (mem.sp + mask) >> shift
    if mem.hp > mem.stack_words:
        pages += (mem.hp - mem.stack_words + mask) >> shift
    return max(1, pages)


class WorldCache:
    """Page-budgeted per-process cache of materialized restored worlds."""

    def __init__(self, limit: Optional[int] = None,
                 page_limit: Optional[int] = None) -> None:
        self.limit = default_world_cache_limit(limit)
        self.page_limit = default_world_cache_pages(page_limit)
        #: snapshot cycle -> per-rank dense memory templates
        self._worlds: "OrderedDict[int, Tuple[tuple, ...]]" = OrderedDict()
        #: snapshot cycle -> resident pages of that world (all ranks)
        self._world_pages: Dict[int, int] = {}
        #: total resident pages currently held
        self.resident_pages = 0
        self.cold_restores = 0
        self.warm_clones = 0
        #: cumulative seconds spent in each path (stage-timing counters)
        self.restore_s = 0.0
        self.clone_s = 0.0

    def __len__(self) -> int:
        return len(self._worlds)

    def _page_budget(self) -> int:
        """Effective page budget for eviction.

        An explicit page budget wins; otherwise the legacy world-count
        limit converts to pages using the cache's own mean footprint, so
        existing REPRO_WORLD_CACHE configurations keep their behaviour.
        """
        if self.page_limit > 0:
            return self.page_limit
        if not self._worlds:
            return 0
        mean = self.resident_pages / len(self._worlds)
        return int(self.limit * mean)

    def _evict_to_budget(self) -> None:
        budget = self._page_budget()
        # always retain the newest world: it is the one the current
        # batch restores from, and evicting it would thrash
        while len(self._worlds) > 1 and self.resident_pages > budget:
            cycle, _ = self._worlds.popitem(last=False)
            self.resident_pages -= self._world_pages.pop(cycle, 0)
        _obs.set_gauge("worldcache_pages", self.resident_pages)

    def restore(self, snap: WorldSnapshot, machines: Sequence,
                runtime) -> tuple:
        """Restore ``snap`` into the job, cloning a warm world if cached.

        Same contract as :func:`repro.vm.snapshot.restore_world`:
        returns ``(start_epoch, trace)``.
        """
        enabled = self.limit > 0 or self.page_limit > 0
        warm = self._worlds.get(snap.cycle) if enabled else None
        t0 = time.perf_counter()
        if warm is not None:
            out = restore_world(snap, machines, runtime, dense_memory=warm)
            self._worlds.move_to_end(snap.cycle)
            self.warm_clones += 1
            dt = time.perf_counter() - t0
            self.clone_s += dt
            rec = _obs.current()
            if rec is not None:
                _obs.span_record("snapshot_restore", t0 - rec.t0, dt,
                                 warm=True, cycle=snap.cycle)
                _obs.inc("repro_world_restores_total", kind="warm")
                _obs.emit("warm_clone", cycle=snap.cycle)
            return out
        out = restore_world(snap, machines, runtime)
        self.cold_restores += 1
        if self.limit > 0 or self.page_limit > 0:
            # Materialize the template *before* any execution mutates the
            # machines: this is the exact observable state a cold restore
            # produces, which is what makes clones bit-identical.
            self._worlds[snap.cycle] = tuple(
                m.memory.dense_state() for m in machines
            )
            pages = sum(_resident_pages(m.memory) for m in machines)
            self._world_pages[snap.cycle] = pages
            self.resident_pages += pages
            self._evict_to_budget()
        dt = time.perf_counter() - t0
        self.restore_s += dt
        rec = _obs.current()
        if rec is not None:
            _obs.span_record("snapshot_restore", t0 - rec.t0, dt,
                             warm=False, cycle=snap.cycle)
            _obs.inc("repro_world_restores_total", kind="cold")
        return out

    def stats(self) -> Dict[str, float]:
        return {
            "worlds": len(self._worlds),
            "resident_pages": self.resident_pages,
            "cold_restores": self.cold_restores,
            "warm_clones": self.warm_clones,
            "restore_s": round(self.restore_s, 6),
            "clone_s": round(self.clone_s, 6),
        }
