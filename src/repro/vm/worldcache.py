"""Warm-world cache: amortized snapshot restores for batched trials.

Snapshot fast-forward (:mod:`repro.vm.snapshot`) rebuilds every rank's
memory from the sparse snapshot encoding on *each* trial — a zero-fill
of the full address space plus per-region reconstruction.  When the
campaign scheduler batches trials by their nearest-preceding snapshot,
consecutive trials on a worker restore the *same* snapshot, so that
reconstruction is pure waste after the first time.

The cache keeps, per snapshot cycle, a dense per-rank memory template
(cells list + validity bytes) materialized right after the first cold
restore — i.e. the exact observable state `restore_state` would
produce.  Later trials on the same snapshot clone the template with two
bulk copies instead of re-running the sparse reconstruction.  All other
world state (frames, registers, shadow tables, RNG, MPI runtime, trace
prefix) still restores through the one shared code path, so a warm
clone is bit-identical to a cold restore by construction — and the
equivalence suite asserts it.

The template store is bounded (``REPRO_WORLD_CACHE`` worlds, default 4)
and per-process: forked pool workers each warm their own cache, which
is exactly what snapshot-locality batching optimises for.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..core.settings import DEFAULT_WORLD_CACHE, current_settings
from ..obs import runtime as _obs
from .snapshot import WorldSnapshot, restore_world

#: default number of materialized worlds retained per process
DEFAULT_WORLDS = DEFAULT_WORLD_CACHE


def default_world_cache_limit(requested: Optional[int] = None) -> int:
    """Worlds retained: argument, else REPRO_WORLD_CACHE, else 4.

    ``0`` disables warm cloning entirely (every restore is cold).
    """
    if requested is not None:
        return max(0, int(requested))
    return current_settings().world_cache


class WorldCache:
    """Bounded per-process cache of materialized restored worlds."""

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = default_world_cache_limit(limit)
        #: snapshot cycle -> per-rank dense memory templates
        self._worlds: "OrderedDict[int, Tuple[tuple, ...]]" = OrderedDict()
        self.cold_restores = 0
        self.warm_clones = 0
        #: cumulative seconds spent in each path (stage-timing counters)
        self.restore_s = 0.0
        self.clone_s = 0.0

    def __len__(self) -> int:
        return len(self._worlds)

    def restore(self, snap: WorldSnapshot, machines: Sequence,
                runtime) -> tuple:
        """Restore ``snap`` into the job, cloning a warm world if cached.

        Same contract as :func:`repro.vm.snapshot.restore_world`:
        returns ``(start_epoch, trace)``.
        """
        warm = self._worlds.get(snap.cycle) if self.limit > 0 else None
        t0 = time.perf_counter()
        if warm is not None:
            out = restore_world(snap, machines, runtime, dense_memory=warm)
            self._worlds.move_to_end(snap.cycle)
            self.warm_clones += 1
            dt = time.perf_counter() - t0
            self.clone_s += dt
            rec = _obs.current()
            if rec is not None:
                _obs.span_record("snapshot_restore", t0 - rec.t0, dt,
                                 warm=True, cycle=snap.cycle)
                _obs.inc("repro_world_restores_total", kind="warm")
                _obs.emit("warm_clone", cycle=snap.cycle)
            return out
        out = restore_world(snap, machines, runtime)
        self.cold_restores += 1
        if self.limit > 0:
            # Materialize the template *before* any execution mutates the
            # machines: this is the exact observable state a cold restore
            # produces, which is what makes clones bit-identical.
            self._worlds[snap.cycle] = tuple(
                m.memory.dense_state() for m in machines
            )
            while len(self._worlds) > self.limit:
                self._worlds.popitem(last=False)
        dt = time.perf_counter() - t0
        self.restore_s += dt
        rec = _obs.current()
        if rec is not None:
            _obs.span_record("snapshot_restore", t0 - rec.t0, dt,
                             warm=False, cycle=snap.cycle)
            _obs.inc("repro_world_restores_total", kind="cold")
        return out

    def stats(self) -> Dict[str, float]:
        return {
            "worlds": len(self._worlds),
            "cold_restores": self.cold_restores,
            "warm_clones": self.warm_clones,
            "restore_s": round(self.restore_s, 6),
            "clone_s": round(self.clone_s, 6),
        }
