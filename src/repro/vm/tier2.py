"""Tier-2 execution: golden-trace superblock compilation.

Campaigns replay the same deterministic golden trajectory thousands of
times — every trial's pre-injection prefix and the post-fire tail of
every masked trial walk the exact control path the golden run took.
Tier-1 pays per-block dispatch for that determinism; this module
compiles it away.

During golden profiling the conditional-branch closures record per-site
edge counts (``machine.edge_profile``).  :func:`derive_plan` then walks
each function from every block head along the *majority* edge of each
branch, concatenating straight-line members across block boundaries
(loop back-edges included, i.e. hot loops unroll) into trace plans.
:func:`install_plan` codegens each plan into one ``exec``-compiled
function — registers as locals, memory operations inlined against the
flat buffers, cycle accounting folded into a single per-trace increment
— and installs it into the per-block ``CompiledFunction.tier2`` map the
run loop consults at block heads.

Deopt guards, and how each maps onto the machine contract:

* **injection pending** — the run loop selects ``tier2_off`` whenever
  ``inj_next != 0`` (same per-frame-entry points as the
  seg_armed/seg_free selection), so a trace can never swallow the
  occurrence counter of a fault that is still waiting to fire;
* **fork-epoch / quantum boundary** — a trace only starts when its
  maximum length fits in the remaining quantum budget, so epoch
  structure (and with it ``GoldenCursor`` pause points, CML sampling
  and MPI interleaving) is bit-identical to tier-1;
* **branch divergence** — every majority-edge branch inside a trace is
  a one-line guard: when the minority edge is taken (a faulty trial
  diverging from the golden path), the trace stores the exact cycles
  consumed in ``machine.tier2_cycles``, settles the injection-counter
  prefix, stages the real successor block and returns to tier-1
  dispatch mid-trace;
* **trap** — a raising member records the completed-member count in
  ``machine.fused_skew`` (the fused-segment mechanism, recovered from
  the traceback line number), so traps land on the same virtual cycle
  as tier-1;
* **chaos** — harness chaos (:mod:`repro.inject.chaos`) perturbs IO,
  workers and artifacts, never VM semantics, so no VM-level guard is
  needed; chaos-stressed campaigns inherit bit-identity from the
  guards above.

Plans (not code objects) are JSON-safe dicts so they ride golden
artifacts across workers: installation from a cached plan re-runs only
codegen, never profiling or planning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import re

from ..ir import Br, CondBr, FpmLoad, FpmStore, Register, Ret
from .compiler import (
    _FUSE_MAX,
    _PURE_KINDS,
    _TERM_KINDS,
    CompiledProgram,
    _compile_entry,
    _injectable_operands,
    _inline_template,
    _ld_trap,
    _operand_expr,
)
from .traps import Trap, TrapKind

#: plan schema version, embedded in every plan dict; bump on any change
#: to the walk or codegen contract so stale artifact plans are ignored
PLAN_VERSION = 1

#: minimum members for a trace to be worth the dispatch-map slot
_MIN_MEMBERS = 8


# ----------------------------------------------------------------------
# Planning: follow the golden-hot path
# ----------------------------------------------------------------------

def _static_target(inst) -> Optional[int]:
    """Compile-time successor of a terminator, or None when dynamic."""
    if isinstance(inst, Br):
        return inst.target.index
    tt = inst.iftrue.index
    tf = inst.iffalse.index
    if not isinstance(inst.cond, Register):
        return tt if inst.cond.value else tf
    if tt == tf:
        return tt
    return None


def _walk(func, head: int, edge_profile: dict, cap: int):
    """Follow the golden-hot path from block ``head``.

    Returns ``(seq, members)``: the block-index sequence (revisits
    allowed — loops unroll until ``cap``) and the member count.  The
    walk ends at a call barrier, a ``ret``, a branch whose golden edge
    counts are missing or tied (dual-exit: no majority to guard on), or
    the cap.
    """
    seq = [head]
    count = 0
    cur = head
    while True:
        nxt = None
        insts = func.blocks[cur].instructions
        for inst in insts:
            if count >= cap:
                return seq, count
            if isinstance(inst, _TERM_KINDS):
                count += 1
                if isinstance(inst, Ret):
                    return seq, count
                nxt = _static_target(inst)
                if nxt is None:
                    counts = edge_profile.get((func.name, cur))
                    if not counts or counts[0] == counts[1]:
                        # no majority edge: the branch itself closes the
                        # trace (dispatched through its real closure)
                        return seq, count
                    nxt = (inst.iftrue.index if counts[1] > counts[0]
                           else inst.iffalse.index)
                break
            if not isinstance(inst, _PURE_KINDS):
                return seq, count  # call barrier
            count += 1
        else:
            return seq, count  # unterminated block (defensive)
        if count >= cap:
            return seq, count
        seq.append(nxt)
        cur = nxt


def derive_plan(program: CompiledProgram, edge_profile: Optional[dict],
                cap: int) -> dict:
    """Plan tier-2 traces for ``program`` from golden edge counts.

    Deterministic in (module, edge_profile, cap): the same golden run
    yields the same plan on every worker.  The result is JSON-safe and
    travels inside golden artifacts; :func:`install_plan` re-derives the
    member structure from the module, so only block sequences and
    counts are stored.
    """
    traces: List[dict] = []
    profile = edge_profile or {}
    for func in program.module:
        for head in range(len(func.blocks)):
            seq, count = _walk(func, head, profile, cap)
            # single-block traces must beat the fused tier to pay for
            # themselves; multi-block traces win on dispatch alone
            if count >= _MIN_MEMBERS and (len(seq) > 1 or count > _FUSE_MAX):
                traces.append({"func": func.name, "head": head,
                               "blocks": [int(b) for b in seq],
                               "members": int(count)})
    return {"version": PLAN_VERSION, "cap": int(cap), "traces": traces}


# ----------------------------------------------------------------------
# Codegen: one exec-compiled function per trace
# ----------------------------------------------------------------------

def _fpm_store_slow(m, addr, v, vp, addr_p):
    """Slow path of the inlined dual-chain store.

    Mirrors :func:`repro.vm.compiler._compile_fpm_store` (non-taint)
    exactly — validity trap, COW, shadow-table bookkeeping — but takes
    the already-evaluated operand *values* instead of re-reading
    ``f.regs``, so it stays correct when the trace has promoted
    registers to locals.  Returns the stored value so the fast-path
    assignment rewrites it in place (a no-op)."""
    mem = m.memory
    if not (0 <= addr < mem.capacity and mem.valid[addr]):
        raise Trap(TrapKind.MEM_FAULT, f"store to invalid address {addr}")
    fpm = m.fpm
    if not mem.page_owned[addr >> mem.page_shift]:
        mem.cow_page(addr)
    if addr_p == addr:
        mem.poke(addr, v)
        if v == vp or v != v and vp != vp:  # equal, or both NaN
            if addr in fpm.table:
                del fpm.table[addr]
        else:
            fpm.record(addr, vp, m.cycles)
    else:
        old = mem.peek(addr)
        mem.poke(addr, v)
        if not (old == v or (old != old and v != v)):
            fpm.record(addr, old, m.cycles)
        if 0 <= addr_p < mem.capacity and mem.valid[addr_p]:
            fpm.update(addr_p, mem.peek(addr_p), vp, m.cycles)
    return v


def _fpm_template(inst):
    """Tier-2-only inline template for the dual-chain memory ops.

    FpmLoad/FpmStore closures (plus their per-call operand getters)
    dominate fpm-mode golden replay, but fused segments cannot inline
    them: their prelude has no shadow-table bind.  Tier-2 traces do
    (``ht``), so the hot paths get spelled out as one source line each —
    same contract as :func:`repro.vm.compiler._inline_template`,
    bit-identical to the closures including trap kind and message.

    The store's fast path covers exactly the golden case (pristine
    address chain, empty shadow table, value chains equal); anything
    else defers to the full closure via :func:`_fpm_store_deopt` on the
    same line, so mid-trace contamination (post-fire tails) stays
    exact.  Taint-mode variants keep their closures.
    """
    if isinstance(inst, FpmLoad) and not inst.taint:
        d, dp = inst.dest.index, inst.dest_p.index
        addr, addr_p = inst.addr, inst.addr_p

        def tmpl(tag, d=d, dp=dp, addr=addr, addr_p=addr_p):
            binds = {f"lt{tag}": _ld_trap}
            a_src = _operand_expr(addr, f"c{tag}a", binds)
            p_src = _operand_expr(addr_p, f"c{tag}p", binds)
            a, q, v = f"a{tag}", f"q{tag}", f"v{tag}"
            line = (
                f"{a} = {a_src}; "
                f"{v} = (cf.item({a}) if fk[{a}] else ci.item({a})) "
                f"if 0 <= {a} < cap and valid[{a}] "
                f"else lt{tag}({a}); "
                f"{q} = {p_src}; "
                f"regs[{d}] = {v}; "
                f"regs[{dp}] = ((ht.get({a}, {v}) if ht else {v}) "
                f"if {q} == {a} else "
                f"(ht.get({q}, cf.item({q}) if fk[{q}] else ci.item({q})) "
                f"if 0 <= {q} < cap and valid[{q}] else {v}))"
            )
            return line, binds, True
        return tmpl

    if isinstance(inst, FpmStore) and not inst.taint:
        value, value_p = inst.value, inst.value_p
        addr, addr_p = inst.addr, inst.addr_p

        def tmpl(tag, value=value, value_p=value_p, addr=addr,
                 addr_p=addr_p):
            binds = {f"sl{tag}": _fpm_store_slow}
            a_src = _operand_expr(addr, f"c{tag}a", binds)
            p_src = _operand_expr(addr_p, f"c{tag}p", binds)
            v_src = _operand_expr(value, f"c{tag}v", binds)
            w_src = _operand_expr(value_p, f"c{tag}w", binds)
            a, q, v, w = f"a{tag}", f"q{tag}", f"v{tag}", f"w{tag}"
            line = (
                f"{a} = {a_src}; {q} = {p_src}; "
                f"{v} = {v_src}; {w} = {w_src}; "
                f"pk({a}, {v}) if ({q} == {a} and not ht "
                f"and ({v} == {w} or ({v} != {v} and {w} != {w})) "
                f"and 0 <= {a} < cap and valid[{a}] "
                f"and (owned[{a} >> psh] or co({a}))) "
                f"else sl{tag}(m, {a}, {v}, {w}, {q})"
            )
            return line, binds, True
        return tmpl

    return None

def _collect(func, seq: List[int], members: int):
    """Re-walk a planned block sequence into codegen member records.

    Returns ``(records, end)`` — records are ``(inst, kind, expected)``
    tuples with kind in ``pure`` / ``br`` (statically-known successor,
    a no-op line) / ``condbr`` (guarded majority edge, ``expected`` is
    the successor block) / ``ret`` / ``exit`` (trace-closing terminator
    dispatched through its closure) — and ``end`` is where tier-1
    dispatch resumes after a full trace: ``(block, ip)``, or None when
    the final member stages its own successor.  Returns None whenever
    the plan does not match the module (plans travel through artifacts,
    so validate defensively rather than trust).
    """
    out: List[Tuple[object, str, Optional[int]]] = []
    pos, cur = 0, seq[0]
    nblocks = len(func.blocks)
    while True:
        if not 0 <= cur < nblocks:
            return None
        term_next = None
        for ip, inst in enumerate(func.blocks[cur].instructions):
            if len(out) == members:
                return out, (cur, ip)
            if isinstance(inst, _TERM_KINDS):
                nxt = seq[pos + 1] if pos + 1 < len(seq) else None
                if isinstance(inst, Ret):
                    if nxt is not None:
                        return None
                    out.append((inst, "ret", None))
                    return (out, None) if len(out) == members else None
                tgt = _static_target(inst)
                if tgt is not None:
                    if nxt is not None and nxt != tgt:
                        return None
                    out.append((inst, "br", tgt))
                elif nxt is None:
                    out.append((inst, "exit", None))
                    return (out, None) if len(out) == members else None
                elif nxt in (inst.iftrue.index, inst.iffalse.index):
                    out.append((inst, "condbr", nxt))
                    tgt = nxt
                else:
                    return None
                if len(out) == members:
                    return out, (tgt, 0)
                if nxt is None:
                    return None
                term_next = nxt
                break
            if not isinstance(inst, _PURE_KINDS):
                return None  # barrier where the plan expected members
            out.append((inst, "pure", None))
        else:
            return None  # block without terminator
        pos += 1
        cur = term_next


#: register-slot references in generated member lines; every operand and
#: destination is spelled ``regs[<int literal>]`` by the templates
_REG_RE = re.compile(r"regs\[(\d+)\]")
#: write positions only: ``regs[K] = <expr>`` (the lookahead rejects the
#: ``regs[K] == other`` comparisons the Cmp template emits)
_REG_WRITE_RE = re.compile(r"regs\[(\d+)\] = (?!=)")
#: guard-line placeholder the promotion pass replaces with flush code
_FLUSH = "§F§"


def _dest_indices(inst) -> List[int]:
    """Register slots a closure-dispatched pure member may write."""
    out = []
    for attr in ("dest", "dest_p"):
        reg = getattr(inst, attr, None)
        if reg is not None:
            out.append(reg.index)
    return out


def _promote(member_lines, line_meta):
    """Promote ``regs[K]`` slots to Python locals ``rK``.

    Register traffic dominates trace bodies once dispatch and the fpm
    closures are gone; list indexing loses to ``LOAD_FAST``/
    ``STORE_FAST`` by a wide margin, so every slot a trace touches is
    loaded into a local up front and written back at every exit:

    * guard lines flush the slots dirtied so far (the ``_FLUSH``
      placeholder) before staging the minority successor;
    * closure-dispatched members get dirty slots flushed before the
      call and their destinations reloaded after it, all on the
      member's own source line;
    * trace-closing terminators flush before the call (``ret`` pops the
      frame — flushing after would hit the wrong frame);
    * the epilogue flushes everything dirty before staging ``end``.

    The *trap* path deliberately does not flush: a raising member
    leaves the machine TRAPPED, and nothing observes a halted frame's
    registers (results come from memory, the shadow table and the trap
    itself).  Returns ``(lines, prelude_loads, epilogue_flush)``.
    """
    used = set()
    for line in member_lines:
        used.update(int(x) for x in _REG_RE.findall(line))
    if not used:
        return ([line.replace(_FLUSH, "") for line in member_lines],
                "", "")

    def sub(line):
        return _REG_RE.sub(lambda mo: f"r{mo.group(1)}", line)

    out = []
    dirty: List[int] = []  # insertion-ordered for deterministic codegen

    def flush():
        return "".join(f"regs[{k}] = r{k}; " for k in dirty)

    for line, meta in zip(member_lines, line_meta):
        writes = [int(x) for x in _REG_WRITE_RE.findall(line)]
        kind = meta[0]
        if kind == "guard":
            out.append(sub(line).replace(_FLUSH, flush()))
        elif kind == "call":
            reload = "".join(f"; r{k} = regs[{k}]" for k in meta[1]
                             if k in used)
            out.append(flush() + line + reload)
        elif kind == "term":
            out.append(flush() + line)
        else:
            out.append(sub(line))
        for k in writes:
            if k not in dirty:
                dirty.append(k)
    loads = "; ".join(f"r{k} = regs[{k}]" for k in sorted(used))
    flushes = "; ".join(f"regs[{k}] = r{k}" for k in dirty)
    return out, loads, flushes


def _codegen(records, end, program: CompiledProgram, label: str):
    """exec-compile one trace function from its member records.

    Follows the fused-segment source contract exactly — one line per
    member at generated line ``4 + i`` (def, try, prelude), traps
    recovered via the traceback line number into ``machine.fused_skew``
    plus the inclusive marked-prefix owed to ``machine.inj_counter`` —
    and extends it with guard lines (mid-trace deopt), register
    promotion (:func:`_promote`) and a variable cycle count in
    ``machine.tier2_cycles``.
    """
    env: Dict[str, object] = {}
    member_lines: List[str] = []
    line_meta: List[tuple] = []
    needs_mem = False
    needs_fpm = False
    pfx: List[int] = []
    c = 0
    total_members = len(records)
    for i, (inst, kind, expected) in enumerate(records):
        marked = (inst.inject_site is not None
                  and bool(_injectable_operands(inst)))
        c += 1 if marked else 0
        pfx.append(c)
        if kind == "pure":
            tmpl = _inline_template(inst)
            if tmpl is None:
                tmpl = _fpm_template(inst)
                needs_fpm = needs_fpm or tmpl is not None
            if tmpl is not None:
                line, binds, mem = tmpl(f"_{i}")
                env.update(binds)
                member_lines.append(line)
                line_meta.append(("tmpl",))
                needs_mem = needs_mem or mem
            else:
                nm = f"s{i}"
                env[nm] = _compile_entry(inst, program)[1]  # bare closure
                member_lines.append(f"{nm}(m, f)")
                line_meta.append(("call", _dest_indices(inst)))
        elif kind == "br":
            # control flow is fully resolved at codegen time; the branch
            # still costs its cycle (one member line, position-counted)
            member_lines.append("pass")
            line_meta.append(("tmpl",))
        elif kind == "condbr":
            ci = inst.cond.index
            tt = inst.iftrue.index
            tf = inst.iffalse.index
            other = tf if expected == tt else tt
            test = f"not regs[{ci}]" if expected == tt else f"regs[{ci}]"
            body = [f"{_FLUSH}f.block = {other}; f.ip = 0; "
                    f"m.tier2_cycles = {i + 1}"]
            if pfx[i]:
                body.append(f"m.inj_counter += {pfx[i]}")
            body.append("return 1")
            member_lines.append(f"if {test}: " + "; ".join(body))
            line_meta.append(("guard",))
        else:  # ret / exit: the terminator closure closes the trace
            nm = f"s{i}"
            env[nm] = _compile_entry(inst, program)[1]
            member_lines.append(f"sig = {nm}(m, f)")
            line_meta.append(("term",))
    total_marked = pfx[-1] if pfx else 0
    member_lines, reg_loads, reg_flushes = _promote(member_lines, line_meta)

    prelude = "regs = f.regs"
    if needs_mem:
        prelude += ("; mem = m.memory; ci = mem.cells_i; "
                    "cf = mem.cells_f; fk = mem.fkind; pk = mem.poke; "
                    "valid = mem.valid; cap = mem.capacity; "
                    "owned = mem.page_owned; psh = mem.page_shift; "
                    "co = mem.cow_page")
    if needs_fpm:
        # the dict is mutated in place by every shadow-table op, so the
        # bind stays live across members (restore() replaces the object,
        # but never mid-quantum, let alone mid-trace)
        prelude += "; ht = m.fpm.table"
    if reg_loads:
        prelude += "; " + reg_loads
    env["_pfx"] = None  # replaced below; named param keeps it a local
    params = ", ".join(f"{nm}={nm}" for nm in env)
    lines = [f"def trace(m, f, {params}):",
             "    try:",
             f"        {prelude}"]
    lines.extend(f"        {line}" for line in member_lines)
    lines.append("    except BaseException as e:")
    lines.append("        p = e.__traceback__.tb_lineno - 4")
    lines.append("        m.fused_skew = p")
    if total_marked:
        lines.append("        m.inj_counter += _pfx[p]")
    lines.append("        raise")
    if reg_flushes and end is not None:
        lines.append(f"    {reg_flushes}")
    lines.append(f"    m.tier2_cycles = {total_members}")
    if total_marked:
        lines.append(f"    m.inj_counter += {total_marked}")
    if end is None:
        lines.append("    return sig")
    else:
        lines.append(f"    f.block = {end[0]}; f.ip = {end[1]}")
        lines.append("    return 1")
    env["_pfx"] = tuple(pfx)
    exec(compile("\n".join(lines), f"<tier2:{label}>", "exec"), env)
    return env["trace"], total_marked


def install_plan(program: CompiledProgram, plan: Optional[dict]) -> int:
    """Codegen ``plan`` and install its traces into ``program``.

    Mutates each :class:`CompiledFunction`'s ``tier2`` list in place, so
    machines constructed before installation pick the traces up on their
    next ``run``.  Idempotent: a program is installed at most once per
    process.  Invalid or stale plan entries (module drift, unknown
    functions, out-of-range blocks) are skipped, never raised — a bad
    plan degrades to tier-1, it must not kill a campaign.  Returns the
    number of traces installed.
    """
    if program.tier2_installed:
        return program.tier2_traces
    installed = 0
    if plan and plan.get("version") == PLAN_VERSION:
        funcs = {fn.name: fn for fn in program.module}
        for tr in plan.get("traces", ()):
            func = funcs.get(tr.get("func"))
            cfunc = program.functions.get(tr.get("func"))
            if func is None or cfunc is None:
                continue
            head = tr.get("head")
            seq = tr.get("blocks")
            members = tr.get("members")
            if not (isinstance(head, int) and isinstance(members, int)
                    and isinstance(seq, list) and seq
                    and seq[0] == head and members > 0
                    and 0 <= head < len(cfunc.tier2)):
                continue
            # a ladder of prefix variants per head: the run loop picks
            # the longest one fitting the remaining quantum budget, so
            # coverage is not limited to one full-length entry per
            # quantum (prefixes of a valid trace are valid traces)
            variants = []
            m2 = members
            while True:
                walked = _collect(func, seq, m2)
                if walked is not None:
                    records, end = walked
                    closure, marked = _codegen(
                        records, end, program,
                        f"{tr['func']}:b{head}:m{m2}")
                    variants.append((closure, m2, marked))
                if m2 <= _MIN_MEMBERS:
                    break
                m2 = max(m2 // 2, _MIN_MEMBERS)
            if not variants:
                continue
            cfunc.tier2[head] = tuple(variants)
            installed += 1
    program.tier2_installed = True
    program.tier2_traces = installed
    return installed
