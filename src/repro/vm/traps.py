"""Trap model: how simulated programs crash.

A :class:`Trap` is the VM-level analogue of a signal/abort on the paper's
cluster.  Traps terminate the MPI process that raised them and classify
the whole run as *Crashed* (paper Sec. 2): segmentation faults from
corrupted pointers, division by zero, ``MPI_Abort`` from application-level
residual checks, deadlocks and hangs.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class TrapKind(Enum):
    """Why a simulated process died."""

    #: Load/store/free of an invalid or unallocated address.
    MEM_FAULT = "mem_fault"
    #: Stack allocation exceeded the stack region.
    STACK_OVERFLOW = "stack_overflow"
    #: Heap exhausted.
    OOM = "oom"
    #: Integer division or remainder by zero.
    DIV_ZERO = "div_zero"
    #: Invalid arithmetic (e.g. float->int of inf/NaN, oversized shift).
    ARITH = "arith"
    #: Operation on an undefined (poison) register value.
    POISON = "poison"
    #: Application called mpi_abort() — e.g. a residual check failed.
    ABORT = "abort"
    #: MPI semantics violated (count mismatch, truncation, bad rank...).
    MPI = "mpi"
    #: All ranks blocked with no possible progress.
    DEADLOCK = "deadlock"
    #: Execution exceeded the cycle budget (treated as a hang).
    HANG = "hang"
    #: Call of an unknown function (corrupted control data).
    BAD_CALL = "bad_call"


class Trap(Exception):
    """Raised inside the VM to kill the current simulated process."""

    def __init__(
        self,
        kind: TrapKind,
        detail: str = "",
        rank: Optional[int] = None,
        cycle: Optional[int] = None,
        code: int = 0,
    ) -> None:
        self.kind = kind
        self.detail = detail
        self.rank = rank
        self.cycle = cycle
        #: abort code for TrapKind.ABORT
        self.code = code
        msg = f"{kind.value}: {detail}" if detail else kind.value
        if rank is not None:
            msg = f"rank {rank}: {msg}"
        super().__init__(msg)
