"""Virtual machine: the simulated processor + process substrate.

Plays the role of the paper's AMD Interlagos cluster nodes: it executes
the compiled IR of MiniHPC applications, provides word-addressed process
memory, converts undefined behaviour into crashes, and hosts the fault
injection and FPM instrumentation runtimes.
"""

from .bitflip import (
    bits_to_float,
    flip_bit,
    flip_float_bit,
    flip_int_bit,
    float_to_bits,
    to_signed64,
    to_unsigned64,
)
from .compiler import CompiledFunction, CompiledProgram, compile_program
from .fingerprint import FingerprintIndex, fingerprint_world, quick_signature
from .intrinsics import (
    BLOCK,
    INTRINSICS,
    MPI_OP_MAX,
    MPI_OP_MIN,
    MPI_OP_SUM,
    IntrinsicSpec,
    get_intrinsic,
    is_intrinsic,
)
from .machine import FaultSpec, Frame, InjectionEvent, Machine, MachineStatus
from .memory import ProcessMemory
from .ops import wrap_i64
from .rng import Lcg64
from .snapshot import SnapshotStore, WorldSnapshot, restore_world
from .tier2 import derive_plan, install_plan
from .traps import Trap, TrapKind
from .worldcache import WorldCache

__all__ = [
    "BLOCK", "CompiledFunction", "CompiledProgram", "FaultSpec",
    "FingerprintIndex", "Frame",
    "INTRINSICS", "InjectionEvent", "IntrinsicSpec", "Lcg64", "MPI_OP_MAX",
    "MPI_OP_MIN", "MPI_OP_SUM", "Machine", "MachineStatus", "ProcessMemory",
    "SnapshotStore", "Trap", "TrapKind", "WorldSnapshot", "bits_to_float",
    "compile_program", "derive_plan", "fingerprint_world", "flip_bit",
    "flip_float_bit", "install_plan", "flip_int_bit",
    "float_to_bits", "get_intrinsic", "is_intrinsic", "quick_signature",
    "restore_world",
    "to_signed64", "to_unsigned64", "wrap_i64", "WorldCache",
]
