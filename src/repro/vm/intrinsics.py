"""Intrinsic functions callable from MiniHPC programs.

Intrinsics are the boundary between application code and the "system":
math library, heap, I/O, and MPI.  The registry here serves two clients:

* the frontend semantic analyser reads the *signatures* to type-check
  calls (pointer parameters carry an element type the IR itself erases);
* the VM dispatches ``Call`` instructions whose callee name is registered
  here to the *handler*.

Purity matters to the dual-chain FPM pass: *pure* intrinsics are
replicated into the secondary chain and evaluated a second time with
pristine arguments (the paper's treatment of library calls like ``sin()``);
impure intrinsics run once with primary arguments and their result is
copied into the shadow register (replicating them would duplicate side
effects — "output values printed twice", Sec. 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .traps import Trap, TrapKind

#: Sentinel returned by blocking intrinsics (MPI) when the calling process
#: must suspend; the VM re-executes the call when the scheduler wakes it.
BLOCK = object()

# Frontend type codes used in signatures:
#   "int", "float"          scalars
#   "pi", "pf"              pointer to int / float words
#   "pa"                    pointer to anything (accepts pi/pf)
#   "void"                  (return only)

Signature = Tuple[Tuple[str, ...], str]


@dataclass(frozen=True)
class IntrinsicSpec:
    name: str
    params: Tuple[str, ...]
    ret: str
    pure: bool
    handler: Callable


def _nan_guard(fn):
    """Wrap a math function so domain errors yield NaN (C math semantics)."""

    def call(x):
        try:
            return fn(x)
        except ValueError:
            return float("nan")
        except OverflowError:
            return float("inf")

    return call


_sqrt = _nan_guard(math.sqrt)
_log = _nan_guard(math.log)
_exp = _nan_guard(math.exp)


def _pow(a: float, b: float) -> float:
    try:
        r = a ** b
    except (ValueError, OverflowError, ZeroDivisionError):
        return float("nan")
    if isinstance(r, complex):
        return float("nan")
    return r


# ----------------------------------------------------------------------
# Handlers.  All take (machine, args) and return the result value, BLOCK,
# or None for void intrinsics.
# ----------------------------------------------------------------------

def _h_malloc(m, a):
    ptr = m.memory.malloc(int(a[0]))
    return ptr


def _h_free(m, a):
    lo, hi = m.memory.free(int(a[0]))
    if m.fpm is not None:
        m.fpm.purge_range(lo, hi)
    return None


def _h_emit(m, a):
    m.outputs.append(a[0])
    return None


def _h_mark_iteration(m, a):
    m.iteration_count += 1
    return None


def _h_rand(m, a):
    return m.rng.next_float()


def _h_mpi_abort(m, a):
    raise Trap(TrapKind.ABORT, f"mpi_abort({a[0]})", rank=m.rank, code=int(a[0]))


def _h_mpi_rank(m, a):
    return m.rank


def _h_mpi_size(m, a):
    return m.size


def _h_mpi_wtime(m, a):
    # Virtual time: one instruction = one cycle at a notional 1 GHz.
    return m.cycles * 1e-9


def _need_runtime(m):
    if m.runtime is None:
        raise Trap(TrapKind.MPI, "MPI runtime not attached", rank=m.rank)
    return m.runtime


def _h_mpi_send(m, a):
    _need_runtime(m).send(m, int(a[0]), int(a[1]), int(a[2]), int(a[3]))
    return None


def _h_mpi_recv(m, a):
    done = _need_runtime(m).recv(m, int(a[0]), int(a[1]), int(a[2]), int(a[3]))
    return None if done else BLOCK


def _h_mpi_barrier(m, a):
    done = _need_runtime(m).collective(m, "barrier", ())
    return None if done else BLOCK


def _h_mpi_bcast(m, a):
    done = _need_runtime(m).collective(
        m, "bcast", (int(a[0]), int(a[1]), int(a[2])))
    return None if done else BLOCK


def _h_mpi_allreduce(m, a):
    done = _need_runtime(m).collective(
        m, "allreduce", (int(a[0]), int(a[1]), int(a[2]), int(a[3])))
    return None if done else BLOCK


def _h_mpi_reduce(m, a):
    done = _need_runtime(m).collective(
        m, "reduce", (int(a[0]), int(a[1]), int(a[2]), int(a[3]), int(a[4])))
    return None if done else BLOCK


def _h_mpi_allgather(m, a):
    done = _need_runtime(m).collective(
        m, "allgather", (int(a[0]), int(a[1]), int(a[2])))
    return None if done else BLOCK


def _h_mpi_sendrecv(m, a):
    # sendrecv(sbuf, scount, dest, rbuf, rcount, src, tag)
    rt = _need_runtime(m)
    return None if rt.sendrecv(m, [int(x) for x in a]) else BLOCK


INTRINSICS: Dict[str, IntrinsicSpec] = {}


def _reg(name: str, params: Tuple[str, ...], ret: str, pure: bool,
         handler: Callable) -> None:
    INTRINSICS[name] = IntrinsicSpec(name, params, ret, pure, handler)


# Math library (pure -> replicated into the secondary chain).
_reg("sqrt", ("float",), "float", True, lambda m, a: _sqrt(a[0]))
_reg("sin", ("float",), "float", True, lambda m, a: math.sin(a[0]))
_reg("cos", ("float",), "float", True, lambda m, a: math.cos(a[0]))
_reg("tan", ("float",), "float", True, lambda m, a: math.tan(a[0]))
_reg("exp", ("float",), "float", True, lambda m, a: _exp(a[0]))
_reg("log", ("float",), "float", True, lambda m, a: _log(a[0]))
_reg("fabs", ("float",), "float", True, lambda m, a: abs(a[0]))
_reg("floor", ("float",), "float", True, lambda m, a: float(math.floor(a[0])))
_reg("ceil", ("float",), "float", True, lambda m, a: float(math.ceil(a[0])))
_reg("pow", ("float", "float"), "float", True, lambda m, a: _pow(a[0], a[1]))
_reg("fmin", ("float", "float"), "float", True, lambda m, a: min(a[0], a[1]))
_reg("fmax", ("float", "float"), "float", True, lambda m, a: max(a[0], a[1]))
_reg("imin", ("int", "int"), "int", True, lambda m, a: min(a[0], a[1]))
_reg("imax", ("int", "int"), "int", True, lambda m, a: max(a[0], a[1]))
_reg("iabs", ("int",), "int", True, lambda m, a: abs(a[0]))

# Memory management (impure: address-space side effects).
_reg("malloc", ("int",), "pa", False, _h_malloc)
_reg("free", ("pa",), "void", False, _h_free)

# Output and bookkeeping.
_reg("emit", ("float",), "void", False, _h_emit)
_reg("emiti", ("int",), "void", False, _h_emit)
_reg("mark_iteration", (), "void", False, _h_mark_iteration)
_reg("rand", (), "float", False, _h_rand)

# MPI.
_reg("mpi_rank", (), "int", False, _h_mpi_rank)
_reg("mpi_size", (), "int", False, _h_mpi_size)
_reg("mpi_wtime", (), "float", False, _h_mpi_wtime)
_reg("mpi_abort", ("int",), "void", False, _h_mpi_abort)
_reg("mpi_send", ("pa", "int", "int", "int"), "void", False, _h_mpi_send)
_reg("mpi_recv", ("pa", "int", "int", "int"), "void", False, _h_mpi_recv)
_reg("mpi_barrier", (), "void", False, _h_mpi_barrier)
_reg("mpi_bcast", ("pa", "int", "int"), "void", False, _h_mpi_bcast)
_reg("mpi_allreduce", ("pa", "pa", "int", "int"), "void", False, _h_mpi_allreduce)
_reg("mpi_reduce", ("pa", "pa", "int", "int", "int"), "void", False, _h_mpi_reduce)
_reg("mpi_allgather", ("pa", "int", "pa"), "void", False, _h_mpi_allgather)
_reg("mpi_sendrecv", ("pa", "int", "int", "pa", "int", "int", "int"), "void",
     False, _h_mpi_sendrecv)

#: MPI reduction op codes shared with MiniHPC sources.
MPI_OP_SUM = 0
MPI_OP_MIN = 1
MPI_OP_MAX = 2


def intrinsic_ret_ir_type(spec: IntrinsicSpec):
    """IR type of an intrinsic's return value (None for void)."""
    from ..ir.types import FLOAT, INT, PTR

    mapping = {"int": INT, "float": FLOAT, "pi": PTR, "pf": PTR, "pa": PTR,
               "void": None}
    return mapping[spec.ret]


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def get_intrinsic(name: str) -> Optional[IntrinsicSpec]:
    return INTRINSICS.get(name)
