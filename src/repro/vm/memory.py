"""Word-addressed process memory on flat NumPy world buffers.

One address holds one 64-bit value (Python ``int`` or ``float``) — the
paper's unit of contamination is one *memory location*, and this memory
model makes ``len(shadow table)`` exactly the paper's CML count.

Representation: a single ``int64`` array is the canonical bit store and
a ``float64`` view aliases the same buffer, so every word is one machine
word and a page copy, snapshot, or fingerprint is one array-slice
operation instead of a per-word Python loop.  A one-byte ``fkind`` tag
per word records which view wrote it last, preserving the exact
int-vs-float observability of the old mixed Python list (``0`` and
``0.0`` share bit patterns but remain distinct values).  The lane tier
(:mod:`.lanes`) stacks N of these buffers into a ``(lanes, words)``
array and executes trials in lockstep over the columns.

Layout::

    0                                  stack_words              capacity
    | null | <- stack grows up ... --> | <- heap bump alloc --> |

Address 0 is reserved so that a null pointer always faults.  Every access
is validity-checked; corrupted pointers therefore produce the paper's
dominant crash cause ("bit flips in pointers that cause the applications
to access a part of the address space that has not been allocated").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .traps import Trap, TrapKind

#: default copy-on-write page size, in 64-bit words
DEFAULT_PAGE_WORDS = 256


def default_page_words() -> int:
    """Words per COW page (REPRO_PAGE_WORDS, power of two)."""
    from ..core.settings import current_settings
    return current_settings().page_words


class ProcessMemory:
    """Flat, validity-checked, word-addressed memory for one process.

    The flat ``cells_i``/``cells_f``/``valid`` buffers double as a
    forkable world segment: :meth:`begin_tx` opens a page-granular
    copy-on-write transaction during which every write path saves the
    pristine content of the first page it touches, and
    :meth:`rollback_tx` restores exactly those pages — O(pages touched),
    not O(capacity).  Outside a transaction ``page_owned`` is all-ones,
    so the per-store guard is a single bytearray index.

    Loads always return *Python* scalars (``.item()``), never NumPy
    scalars: the interpreter's wrap arithmetic (``& _M64``) and the
    journal's JSON encoding both require native ``int``/``float``.
    """

    __slots__ = (
        "capacity",
        "stack_words",
        "cells_i",
        "cells_f",
        "fkind",
        "valid",
        "sp",
        "sp_peak",
        "hp",
        "heap_blocks",
        "free_lists",
        "live_words",
        "rank",
        "page_shift",
        "page_owned",
        "_tx",
        "_tx_meta",
    )

    def __init__(self, capacity: int = 1 << 16, stack_words: int = 1 << 14,
                 rank: int = 0, page_words: Optional[int] = None) -> None:
        if stack_words >= capacity:
            raise ValueError("stack region must be smaller than total capacity")
        self.capacity = capacity
        self.stack_words = stack_words
        self.cells_i = np.zeros(capacity, dtype=np.int64)
        self.cells_f = self.cells_i.view(np.float64)
        #: 1 = the word was last written as a float (read via ``cells_f``)
        self.fkind = bytearray(capacity)
        self.valid = bytearray(capacity)
        self.sp = 1  # address 0 is the null word
        #: stack high-water mark since the last restore — together with
        #: the monotone heap bump pointer it bounds every word this run
        #: could have dirtied, which is what makes in-place restores
        #: proportional to touched state rather than capacity
        self.sp_peak = 1
        self.hp = stack_words
        #: heap block base -> size, for free() and validity bookkeeping
        self.heap_blocks: Dict[int, int] = {}
        #: exact-size free lists for simple reuse
        self.free_lists: Dict[int, List[int]] = {}
        self.live_words = 0
        self.rank = rank
        if page_words is None:
            page_words = default_page_words()
        if page_words <= 0 or page_words & (page_words - 1):
            raise ValueError(f"page_words must be a power of two, "
                             f"got {page_words}")
        self.page_shift = page_words.bit_length() - 1
        npages = (capacity + page_words - 1) >> self.page_shift
        #: 1 = this trial may write the page directly; all-ones outside
        #: a transaction, cleared by :meth:`begin_tx`
        self.page_owned = bytearray(b"\x01" * npages)
        #: active transaction: {page index: (cells_i, fkind, valid)}
        self._tx: Optional[Dict[int, tuple]] = None
        self._tx_meta: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Raw access (hot path: machine closures may bypass via direct fields)
    # ------------------------------------------------------------------
    def peek(self, addr: int):
        """Typed read without validity checks (tests, fingerprints)."""
        return (self.cells_f.item(addr) if self.fkind[addr]
                else self.cells_i.item(addr))

    def poke(self, addr: int, value) -> None:
        """Typed write without validity/COW checks.  Compiled closures
        call this after performing their own guards."""
        if value.__class__ is float:
            self.cells_f[addr] = value
            self.fkind[addr] = 1
        else:
            self.cells_i[addr] = value
            self.fkind[addr] = 0

    def load(self, addr: int):
        if 0 <= addr < self.capacity and self.valid[addr]:
            return (self.cells_f.item(addr) if self.fkind[addr]
                    else self.cells_i.item(addr))
        raise Trap(TrapKind.MEM_FAULT, f"load from invalid address {addr}",
                   rank=self.rank)

    def store(self, addr: int, value) -> None:
        if 0 <= addr < self.capacity and self.valid[addr]:
            if not self.page_owned[addr >> self.page_shift]:
                self.cow_page(addr)
            self.poke(addr, value)
            return
        raise Trap(TrapKind.MEM_FAULT, f"store to invalid address {addr}",
                   rank=self.rank)

    def check_range(self, addr: int, count: int) -> None:
        """Trap unless ``[addr, addr+count)`` is fully valid."""
        if count < 0:
            raise Trap(TrapKind.MEM_FAULT, f"negative range length {count}",
                       rank=self.rank)
        if addr < 0 or addr + count > self.capacity:
            raise Trap(TrapKind.MEM_FAULT,
                       f"range [{addr}, {addr + count}) out of bounds",
                       rank=self.rank)
        # One C-speed scan for the first invalid byte; valid bytes are
        # always 0 or 1, so find(0) is exact and allocation-free.  This
        # runs on every block MPI transfer.
        bad = self.valid.find(0, addr, addr + count)
        if bad >= 0:
            raise Trap(TrapKind.MEM_FAULT,
                       f"access to unallocated address {bad}", rank=self.rank)

    def _typed_list(self, lo: int, hi: int) -> List:
        """Words in ``[lo, hi)`` as native Python scalars."""
        out = self.cells_i[lo:hi].tolist()
        f = self.fkind.find(1, lo, hi)
        while f >= 0:
            out[f - lo] = self.cells_f.item(f)
            f = self.fkind.find(1, f + 1, hi)
        return out

    def words(self) -> List:
        """Every word as a native Python scalar (tests, debugging)."""
        return self._typed_list(0, self.capacity)

    def read_block(self, addr: int, count: int) -> List:
        self.check_range(addr, count)
        return self._typed_list(addr, addr + count)

    def write_block(self, addr: int, values: List) -> None:
        n = len(values)
        self.check_range(addr, n)
        if self._tx is not None:
            self._cow_range(addr, addr + n)
        has_float = False
        has_int = False
        for v in values:
            if v.__class__ is float:
                has_float = True
            else:
                has_int = True
        if not has_float:
            self.cells_i[addr:addr + n] = values
            self.fkind[addr:addr + n] = b"\x00" * n
        elif not has_int:
            self.cells_f[addr:addr + n] = values
            self.fkind[addr:addr + n] = b"\x01" * n
        else:
            # Mixed blocks must not be bulk-assigned into either typed
            # view (NumPy would silently coerce), so write word-by-word.
            for k, v in enumerate(values):
                self.poke(addr + k, v)

    # ------------------------------------------------------------------
    # Copy-on-write transactions (fork-at-injection trial execution)
    # ------------------------------------------------------------------
    def begin_tx(self) -> None:
        """Open a COW transaction: from now on every write path saves
        the pristine content of the first page it touches, so
        :meth:`rollback_tx` can undo the trial in O(pages touched).
        Allocator metadata (``sp``/``hp``/block tables) is saved whole —
        it is small and mutates on almost every call frame anyway.
        """
        if self._tx is not None:
            raise RuntimeError("COW transaction already active")
        self._tx = {}
        self._tx_meta = (
            self.sp, self.sp_peak, self.hp,
            dict(self.heap_blocks),
            {size: list(b) for size, b in self.free_lists.items()},
            self.live_words,
        )
        self.page_owned[:] = b"\x00" * len(self.page_owned)

    def cow_page(self, addr: int) -> int:
        """Save the pristine page containing ``addr`` (first write in an
        active transaction) and mark it owned.  Returns truthy so the
        compiled store guard can use it in an ``or`` chain."""
        pg = addr >> self.page_shift
        if not self.page_owned[pg]:
            lo = pg << self.page_shift
            hi = lo + (1 << self.page_shift)
            self._tx[pg] = (self.cells_i[lo:hi].copy(),
                            bytes(self.fkind[lo:hi]),
                            bytes(self.valid[lo:hi]))
            self.page_owned[pg] = 1
        return 1

    def _cow_range(self, lo: int, hi: int) -> None:
        """Save every not-yet-owned page overlapping ``[lo, hi)``."""
        if hi <= lo:
            return
        psh = self.page_shift
        owned = self.page_owned
        for pg in range((lo >> psh), ((hi - 1) >> psh) + 1):
            if not owned[pg]:
                self.cow_page(pg << psh)

    @property
    def tx_pages_copied(self) -> int:
        """Pages privatised so far by the active transaction (0 outside)."""
        return len(self._tx) if self._tx is not None else 0

    def rollback_tx(self) -> int:
        """Undo every write since :meth:`begin_tx`; returns the number
        of pages that had to be restored."""
        tx = self._tx
        if tx is None:
            raise RuntimeError("no COW transaction to roll back")
        ci = self.cells_i
        fk = self.fkind
        valid = self.valid
        psh = self.page_shift
        for pg, (cell_page, fk_page, valid_page) in tx.items():
            lo = pg << psh
            ci[lo:lo + len(cell_page)] = cell_page
            fk[lo:lo + len(fk_page)] = fk_page
            valid[lo:lo + len(valid_page)] = valid_page
        (self.sp, self.sp_peak, self.hp, self.heap_blocks,
         self.free_lists, self.live_words) = self._tx_meta
        self._tx = None
        self._tx_meta = None
        self.page_owned[:] = b"\x01" * len(self.page_owned)
        return len(tx)

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------
    def stack_alloc(self, count: int) -> int:
        addr = self.sp
        new_sp = addr + count
        if new_sp > self.stack_words:
            raise Trap(TrapKind.STACK_OVERFLOW,
                       f"stack needs {new_sp} words, limit {self.stack_words}",
                       rank=self.rank)
        if self._tx is not None:
            self._cow_range(addr, new_sp)
        self.cells_i[addr:new_sp] = 0
        self.fkind[addr:new_sp] = b"\x00" * count
        self.valid[addr:new_sp] = b"\x01" * count
        self.sp = new_sp
        if new_sp > self.sp_peak:
            self.sp_peak = new_sp
        self.live_words += count
        return addr

    def stack_release(self, to_sp: int) -> Tuple[int, int]:
        """Pop the stack back to ``to_sp``; returns the freed range."""
        lo, hi = to_sp, self.sp
        if lo < hi:
            if self._tx is not None:
                self._cow_range(lo, hi)
            self.valid[lo:hi] = b"\x00" * (hi - lo)
            self.live_words -= hi - lo
            self.sp = lo
        return lo, hi

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------
    def malloc(self, count: int) -> int:
        if count <= 0:
            raise Trap(TrapKind.ARITH, f"malloc of non-positive size {count}",
                       rank=self.rank)
        bucket = self.free_lists.get(count)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self.hp
            if addr + count > self.capacity:
                raise Trap(TrapKind.OOM,
                           f"heap needs {addr + count} words, capacity "
                           f"{self.capacity}", rank=self.rank)
            self.hp = addr + count
        if self._tx is not None:
            self._cow_range(addr, addr + count)
        self.cells_i[addr:addr + count] = 0
        self.fkind[addr:addr + count] = b"\x00" * count
        self.valid[addr:addr + count] = b"\x01" * count
        self.heap_blocks[addr] = count
        self.live_words += count
        return addr

    def free(self, addr: int) -> Tuple[int, int]:
        """Free a heap block; returns the freed range for shadow purging."""
        count = self.heap_blocks.pop(addr, None)
        if count is None:
            raise Trap(TrapKind.MEM_FAULT, f"free of invalid pointer {addr}",
                       rank=self.rank)
        if self._tx is not None:
            self._cow_range(addr, addr + count)
        self.valid[addr:addr + count] = b"\x00" * count
        self.live_words -= count
        self.free_lists.setdefault(count, []).append(addr)
        return addr, addr + count

    # ------------------------------------------------------------------
    # Snapshot fast-forward support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Capture a sparse, immutable copy of all *observable* memory.

        Only live words are copied: the stack ``[1, sp)`` (contiguously
        valid by construction) and the live heap blocks, each as one
        array-slice copy plus its ``fkind`` tags.  Invalid cells retain
        stale garbage in a live process, but every access path is
        validity-checked, so restoring them as zeros is observationally
        exact — and keeps per-snapshot cost proportional to live state,
        not capacity.
        """
        stack_ci = self.cells_i[1:self.sp].copy()
        stack_ci.flags.writeable = False
        heap = {}
        for base, size in self.heap_blocks.items():
            blk = self.cells_i[base:base + size].copy()
            blk.flags.writeable = False
            heap[base] = (blk, bytes(self.fkind[base:base + size]))
        return (
            self.sp,
            self.hp,
            stack_ci,
            bytes(self.fkind[1:self.sp]),
            heap,
            {size: list(bucket) for size, bucket in self.free_lists.items()},
            self.live_words,
        )

    def _wipe_dirty(self) -> None:
        """Clear every validity byte this run could have dirtied: the
        stack up to its high-water mark and the heap up to the bump
        pointer (``hp`` is monotone between restores; free-list reuse
        never lowers it).  Cells left under ``valid == 0`` may keep
        stale values; every access path is validity-checked, so that is
        observationally exact.  The one shared dirty-tracking primitive
        of both restore paths — they cannot drift."""
        valid = self.valid
        if self.sp_peak > 1:
            valid[1:self.sp_peak] = b"\x00" * (self.sp_peak - 1)
        if self.hp > self.stack_words:
            valid[self.stack_words:self.hp] = \
                b"\x00" * (self.hp - self.stack_words)

    def _set_restored_meta(self, sp: int, hp: int, blocks: Dict[int, int],
                           free_lists: Dict[int, List[int]],
                           live_words: int) -> None:
        self.sp = sp
        self.sp_peak = sp
        self.hp = hp
        self.heap_blocks = dict(blocks)
        self.free_lists = {size: list(b) for size, b in free_lists.items()}
        self.live_words = live_words

    def restore_state(self, state: tuple) -> None:
        """Reset this memory to a state captured by :meth:`snapshot_state`.

        In place, dirty-delta: instead of reallocating full-capacity
        buffers per call, only the validity bytes this run could have
        dirtied are wiped (:meth:`_wipe_dirty`) and the snapshot content
        is overlaid as bulk slice copies.  On a fresh memory both wipes
        are empty and the restore is a pure overlay.
        """
        if self._tx is not None:
            raise RuntimeError("cannot restore during a COW transaction")
        sp, hp, stack_ci, stack_fk, heap, free_lists, live_words = state
        ci = self.cells_i
        fk = self.fkind
        valid = self.valid
        self._wipe_dirty()
        ci[1:sp] = stack_ci
        fk[1:sp] = stack_fk
        valid[1:sp] = b"\x01" * (sp - 1)
        blocks: Dict[int, int] = {}
        for base, (blk_ci, blk_fk) in heap.items():
            size = len(blk_ci)
            ci[base:base + size] = blk_ci
            fk[base:base + size] = blk_fk
            valid[base:base + size] = b"\x01" * size
            blocks[base] = size
        self._set_restored_meta(sp, hp, blocks, free_lists, live_words)

    # ------------------------------------------------------------------
    # Warm-world clone support
    # ------------------------------------------------------------------
    def dense_state(self) -> tuple:
        """Materialized template of the current memory for fast cloning.

        Unlike :meth:`snapshot_state` (sparse — proportional to live
        state, meant for long-lived stores), the dense form trades space
        for clone speed: restoring it is a handful of bulk slice copies
        instead of a zero-fill plus per-region reconstruction.  The lane
        tier also consumes this form to stack worlds into its
        ``(lanes, words)`` array.
        """
        ci = self.cells_i.copy()
        ci.flags.writeable = False
        return (
            self.sp,
            self.hp,
            ci,
            bytes(self.fkind),
            bytes(self.valid),
            dict(self.heap_blocks),
            {size: list(bucket) for size, bucket in self.free_lists.items()},
            self.live_words,
        )

    def restore_dense(self, state: tuple) -> None:
        """Reset to a template captured by :meth:`dense_state`.

        Shares the dirty-tracking path with :meth:`restore_state`
        (:meth:`_wipe_dirty` + :meth:`_set_restored_meta`), then
        overlays only the regions the template can populate — the
        stack ``[1, sp)`` and the heap ``[stack_words, hp)`` — as
        in-place bulk copies, so back-to-back warm clones neither
        allocate nor touch anything of capacity size.
        """
        if self._tx is not None:
            raise RuntimeError("cannot restore during a COW transaction")
        sp, hp, ci, fk, valid, blocks, free_lists, live_words = state
        self._wipe_dirty()
        self.cells_i[1:sp] = ci[1:sp]
        self.fkind[1:sp] = fk[1:sp]
        self.valid[1:sp] = valid[1:sp]
        if hp > self.stack_words:
            self.cells_i[self.stack_words:hp] = ci[self.stack_words:hp]
            self.fkind[self.stack_words:hp] = fk[self.stack_words:hp]
            self.valid[self.stack_words:hp] = valid[self.stack_words:hp]
        self._set_restored_meta(sp, hp, blocks, free_lists, live_words)
