"""The virtual machine: one instance simulates one MPI process.

A :class:`Machine` executes a :class:`~repro.vm.compiler.CompiledProgram`
with an explicit call stack (no host recursion), so the scheduler can run
it in bounded quanta and suspend it mid-call on blocking MPI operations.
One executed instruction is one cycle of virtual time.

The machine also hosts the two instrumentation runtimes:

* **fault injection** — an occurrence counter over instructions marked by
  the fault-injection pass; when the counter hits an armed
  :class:`FaultSpec` occurrence, one bit of one live source register is
  flipped (the paper's register-level transient-error model);
* **FPM** — the shadow hash table of contaminated locations, updated by
  the ``fpm_load``/``fpm_store`` closures and purged when stack frames or
  heap blocks die.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..fpm.shadow import ShadowTable
from ..fpm.taint import TaintTable
from ..obs import runtime as _obs
from .bitflip import flip_bit
from .compiler import (
    SIG_BLOCK,
    SIG_CALL,
    SIG_INJECT,
    SIG_JUMP,
    SIG_RET,
    CompiledFunction,
    CompiledProgram,
)
from .memory import ProcessMemory
from .rng import Lcg64
from .traps import Trap, TrapKind


class MachineStatus(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    TRAPPED = "trapped"


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject, LLFI-style.

    ``occurrence`` is the 1-based dynamic index among executions of marked
    (injectable) instructions on this rank; ``bit`` and ``operand`` default
    to "choose uniformly at random at injection time".
    """

    rank: int
    occurrence: int
    bit: Optional[int] = None
    operand: Optional[int] = None


@dataclass
class InjectionEvent:
    """Record of a fault that actually fired."""

    occurrence: int
    reg_index: int
    operand_index: int
    bit: int
    is_float: bool
    before: object
    after: object
    cycle: int = -1  # filled in by the run loop with the exact cycle
    #: static site id, resolvable via CompiledProgram.site_table
    site: int = -1


class Frame:
    """One activation record."""

    __slots__ = ("cfunc", "regs", "block", "ip", "saved_sp", "ret_dest", "ret_dest_p")

    def __init__(self, cfunc: CompiledFunction, saved_sp: int,
                 ret_dest: Optional[int], ret_dest_p: Optional[int]) -> None:
        self.cfunc = cfunc
        self.regs: list = [None] * cfunc.num_regs
        self.block = 0
        self.ip = 0
        self.saved_sp = saved_sp
        self.ret_dest = ret_dest
        self.ret_dest_p = ret_dest_p


class Machine:
    """One simulated MPI process executing a compiled program."""

    def __init__(
        self,
        program: CompiledProgram,
        rank: int = 0,
        size: int = 1,
        runtime=None,
        *,
        seed: int = 12345,
        mem_capacity: int = 1 << 16,
        stack_words: int = 1 << 13,
        max_call_depth: int = 200,
        entry: str = "main",
    ) -> None:
        self.program = program
        self.rank = rank
        self.size = size
        self.runtime = runtime
        self.entry = entry
        self.memory = ProcessMemory(mem_capacity, stack_words, rank)
        self.rng = Lcg64(seed, stream=rank)
        if program.taint_mode:
            self.fpm: Optional[ShadowTable] = TaintTable()
        elif program.fpm_mode:
            self.fpm = ShadowTable()
        else:
            self.fpm = None

        self.call_stack: List[Frame] = []
        self.max_call_depth = max_call_depth
        self.status = MachineStatus.READY
        self.cycles = 0
        self.trap: Optional[Trap] = None
        self.outputs: list = []
        self.iteration_count = 0

        # MPI cooperation state (owned by the runtime).
        self.pending = None
        self.coll_seq = 0

        # Call/return staging used by the run loop.
        self.pending_call: Optional[Tuple] = None
        self.ret_val = None
        self.ret_val_p = None

        # Fault injection state.
        self.inj_counter = 0
        self.inj_next = 0  # 0 never matches: counter starts at 1
        self._armed: List[FaultSpec] = []
        self._armed_idx = 0
        self._inj_rng = Lcg64(seed ^ 0xFA17, stream=rank)
        self.injection_events: List[InjectionEvent] = []

        # Lane-tier occurrence-cut pause (see repro.vm.lanes): the lane
        # window arms ``inj_next`` with *no* armed faults so the marked
        # instruction at the cut executes normally but still signals
        # SIG_INJECT; the run loop then stops right after it, leaving
        # the machine mid-quantum with ``_pause_left`` budget unspent.
        self._pause_armed = False
        self._pause_hit = False
        self._pause_left = 0
        # instructions of the current quantum executed before a pause but
        # not yet committed to ``cycles``; re-counted by the resuming run
        self._pause_spent = 0

        #: members completed by a fused segment before one of them raised;
        #: the run loop folds this into its instruction count so trap
        #: cycles are identical to single-step dispatch
        self.fused_skew = 0

        # Tier-2 golden-trace execution state.
        #: runtime enable: campaigns running --no-tier2 share compiled
        #: programs (and their installed traces) with tier-2-on campaigns
        #: through the prepared cache, so disabling must be per machine
        self.use_tier2 = True
        #: ``(func name, block index) -> [false count, true count]`` edge
        #: counts, filled by profiling condbr closures during golden runs
        #: (None — the default — keeps every branch on its fast path)
        self.edge_profile: Optional[dict] = None
        #: cycles consumed by the last tier-2 trace entry (written by the
        #: generated trace epilogues/guards, read by the run loop)
        self.tier2_cycles = 0
        #: observability counters, drained by the scheduler at job end
        self.t2_enters = 0
        self.t2_deopts = 0
        self.t2_cycles_acc = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def arm_faults(self, specs: Sequence[FaultSpec], seed: Optional[int] = None) -> None:
        """Arm the fault plan for this rank (specs for other ranks ignored)."""
        mine = sorted(
            (s for s in specs if s.rank == self.rank), key=lambda s: s.occurrence
        )
        for s in mine:
            if s.occurrence < 1:
                raise ValueError(f"fault occurrence must be >= 1, got {s.occurrence}")
        self._armed = mine
        self._armed_idx = 0
        if seed is not None:
            self._inj_rng = Lcg64(seed ^ 0xFA17, stream=self.rank)
        self.inj_next = mine[0].occurrence if mine else 0

    def start(self, args: Optional[Sequence] = None) -> None:
        """Push the entry frame. Default arguments are ``(rank, size)``."""
        cfunc = self.program.functions.get(self.entry)
        if cfunc is None:
            raise Trap(TrapKind.BAD_CALL, f"no entry function {self.entry!r}",
                       rank=self.rank)
        if args is None:
            args = (self.rank, self.size)
        if cfunc.is_dual:
            dual_args = []
            for a in args:
                # dual-chain shadows start as the pristine value itself;
                # taint shadows start clean (0 = not derived from a fault)
                dual_args.extend((a, 0 if self.program.taint_mode else a))
            args = dual_args
        if len(args) != len(cfunc.param_indices):
            raise Trap(TrapKind.BAD_CALL,
                       f"entry {self.entry!r} expects {len(cfunc.param_indices)} "
                       f"args, got {len(args)}", rank=self.rank)
        frame = Frame(cfunc, self.memory.sp, None, None)
        for pi, av in zip(cfunc.param_indices, args):
            frame.regs[pi] = av
        self.call_stack = [frame]
        self.status = MachineStatus.READY

    # ------------------------------------------------------------------
    # Fault injection (called from compiled closures)
    # ------------------------------------------------------------------
    def inject_now(self, frame: Frame, opinfo, site: int = -1) -> None:
        """Fire every armed fault whose occurrence equals the counter."""
        count = self.inj_counter
        while self._armed_idx < len(self._armed) and \
                self._armed[self._armed_idx].occurrence == count:
            spec = self._armed[self._armed_idx]
            self._armed_idx += 1
            if spec.operand is not None and 0 <= spec.operand < len(opinfo):
                op_i = spec.operand
            else:
                op_i = self._inj_rng.next_int(len(opinfo))
            reg_index, is_float, shadow_index = opinfo[op_i]
            bit = spec.bit if spec.bit is not None else self._inj_rng.next_int(64)
            before = frame.regs[reg_index]
            after = flip_bit(before, bit, is_float)
            frame.regs[reg_index] = after
            if self.program.taint_mode and shadow_index >= 0:
                # taint analysis marks the flipped register as derived
                # from the fault
                frame.regs[shadow_index] = 1
            event = InjectionEvent(count, reg_index, op_i, bit, is_float,
                                   before, after, site=site)
            # Approximate cycle (stale by at most one scheduler quantum);
            # the run loop overwrites it with the exact value unless the
            # injected instruction traps immediately.
            event.cycle = self.cycles + 1
            self.injection_events.append(event)
            if _obs._CURRENT is not None:
                _obs.inc("repro_injections_total")
                _obs.emit("injection", rank=self.rank, occurrence=count,
                          site=site, bit=bit, cycle=event.cycle)
        self.inj_next = (
            self._armed[self._armed_idx].occurrence
            if self._armed_idx < len(self._armed)
            else 0
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, budget: int) -> MachineStatus:
        """Execute up to ``budget`` instructions; returns the new status.

        Dispatch is three-level: at a block head (ip 0) the tier-2 trace
        map is consulted first — each head holds a ladder of compiled
        golden-trace variants (descending length) and the longest one
        whose maximum length fits in the remaining budget runs; elsewhere
        the per-block segment map is consulted — a fused superinstruction
        executes only when it fits in the remaining budget (so epoch
        structure, and with it CML sampling and MPI interleaving, is
        bit-identical to single-step dispatch); otherwise the
        single-instruction closure runs.  Both upper-tier layouts are
        chosen per frame entry: ``seg_free``/``tier2`` whenever
        ``inj_next == 0`` (no pending fault on this rank — golden runs
        and post-fire tails), ``seg_armed``/``tier2_off`` while a fault
        is pending.
        """
        if self.status is not MachineStatus.READY:
            return self.status
        if not self.call_stack:
            raise RuntimeError("Machine.run() before start()")
        mem = self.memory
        stack = self.call_stack
        self.fused_skew = 0
        use2 = self.use_tier2
        f = stack[-1]
        cfunc = f.cfunc
        blocks = cfunc.blocks
        fblocks = cfunc.seg_free if self.inj_next == 0 else cfunc.seg_armed
        t2b = cfunc.tier2 if use2 else cfunc.tier2_off
        code = blocks[f.block]
        fmap = fblocks[f.block]
        ip = f.ip
        # Re-open a pause-split quantum: the instructions executed before
        # the occurrence cut were left uncommitted (``cycles`` still reads
        # the quantum start, exactly as in an unsplit run), so count from
        # there and stretch the budget back to the full quantum.  Every
        # cycle observer then sees identical values whether the quantum
        # was split by a lane pause or ran in one piece.
        n = self._pause_spent
        self._pause_spent = 0
        budget += n
        t2n = t2d = t2c = 0
        try:
            while n < budget:
                if ip == 0 and (cands := t2b[f.block]) is not None:
                    # longest ladder variant that fits the remaining
                    # budget (variants are sorted by descending length);
                    # while a fault is pending, additionally require the
                    # variant's marked-instruction total to stay short of
                    # the fire threshold — it then only bulk-advances the
                    # occurrence counter, and the fault still fires on
                    # the exact single-stepped marked instruction
                    rem = budget - n
                    gap = (self.inj_next - self.inj_counter
                           if self.inj_next else 0)
                    seg2 = None
                    for c2 in cands:
                        if c2[1] <= rem and (gap == 0 or c2[2] < gap):
                            seg2 = c2
                            break
                else:
                    seg2 = None
                if seg2 is not None:
                    t2n += 1
                    sig = seg2[0](self, f)
                    c = self.tier2_cycles
                    n += c
                    t2c += c
                    if c != seg2[1]:
                        t2d += 1  # guard/cap exit before the trace end
                    if sig == SIG_JUMP:
                        ip = f.ip
                        code = blocks[f.block]
                        fmap = fblocks[f.block]
                        continue
                    # SIG_RET: the trace ran through the function's
                    # return — fall through to the shared handling below.
                elif (seg := fmap[ip]) is not None and n + seg[1] <= budget:
                    sig = seg[0](self, f)
                    n += seg[1]
                    if sig is None:
                        ip += seg[1]
                        continue
                    if sig == SIG_JUMP:
                        ip = 0
                        code = blocks[f.block]
                        fmap = fblocks[f.block]
                        continue
                    # SIG_RET from a fused terminator: fall through to the
                    # shared return handling below.
                else:
                    sig = code[ip](self, f)
                    n += 1
                    if sig is None:
                        ip += 1
                        continue
                    if sig == SIG_JUMP:
                        ip = 0
                        code = blocks[f.block]
                        fmap = fblocks[f.block]
                        continue
                    if sig == SIG_CALL:
                        f.ip = ip + 1
                        target, args, dest, dest_p = self.pending_call
                        self.pending_call = None
                        if len(stack) >= self.max_call_depth:
                            raise Trap(TrapKind.STACK_OVERFLOW,
                                       f"call depth {len(stack)} exceeded")
                        nf = Frame(target, mem.sp, dest, dest_p)
                        regs = nf.regs
                        for pi, av in zip(target.param_indices, args):
                            regs[pi] = av
                        stack.append(nf)
                        f = nf
                        cfunc = target
                        blocks = target.blocks
                        fblocks = (target.seg_free if self.inj_next == 0
                                   else target.seg_armed)
                        t2b = (target.tier2 if use2
                               else target.tier2_off)
                        code = blocks[0]
                        fmap = fblocks[0]
                        ip = 0
                        continue
                    if sig == SIG_BLOCK:
                        # Do not count the re-executed call against the clock
                        # twice; the blocked attempt itself still costs 1 cycle.
                        f.ip = ip
                        self.status = MachineStatus.BLOCKED
                        break
                    if sig == SIG_INJECT:
                        # a lane-tier pause matches the counter with no
                        # armed fault, so no event was appended
                        if self.injection_events:
                            self.injection_events[-1].cycle = self.cycles + n
                        ip += 1
                        if self._pause_armed:
                            # occurrence cut: stop right *after* the
                            # matched instruction, mid-quantum; the
                            # scheduler resumes with the leftover budget.
                            # The segment's cycles stay uncommitted
                            # (``_pause_spent``) so quantum-grained cycle
                            # reads stay bit-identical to an unsplit run.
                            self._pause_armed = False
                            self._pause_hit = True
                            self._pause_left = budget - n
                            self._pause_spent = n
                            n = 0
                            f.ip = ip
                            break
                        continue
                # SIG_RET (from either dispatch path)
                done = stack.pop()
                if not stack:
                    # Keep the entry frame's memory live so the final
                    # application state (and its contamination) remains
                    # inspectable after exit, like a core dump.
                    self.status = MachineStatus.DONE
                    break
                lo, hi = mem.stack_release(done.saved_sp)
                if self.fpm is not None and hi > lo:
                    self.fpm.purge_range(lo, hi)
                f = stack[-1]
                if done.ret_dest is not None:
                    f.regs[done.ret_dest] = self.ret_val
                if done.ret_dest_p is not None:
                    f.regs[done.ret_dest_p] = self.ret_val_p
                cfunc = f.cfunc
                blocks = cfunc.blocks
                fblocks = (cfunc.seg_free if self.inj_next == 0
                           else cfunc.seg_armed)
                t2b = cfunc.tier2 if use2 else cfunc.tier2_off
                code = blocks[f.block]
                fmap = fblocks[f.block]
                ip = f.ip
            else:
                # Budget exhausted mid-run: stay READY for the next quantum.
                f.ip = ip
        except (Trap, ZeroDivisionError, OverflowError, ValueError,
                TypeError) as exc:
            # Fused segments and tier-2 traces record how many members
            # completed before the raise; fold that skew exactly once so
            # the trap lands on the same virtual cycle as single-step
            # dispatch, then classify the exception into a Trap.
            n += self.fused_skew
            self.fused_skew = 0
            self.trap = self._as_trap(exc, self.cycles + n)
            self.status = MachineStatus.TRAPPED
        if t2n:
            self.t2_enters += t2n
            self.t2_deopts += t2d
            self.t2_cycles_acc += t2c
        self.cycles += n
        return self.status

    def _as_trap(self, exc: BaseException, cycle: int) -> Trap:
        """Normalise a raising instruction into a :class:`Trap` at ``cycle``.

        The shared tail of the dispatch loop's except-path: VM traps pass
        through with rank/cycle pinned; host-level errors are classified
        into the paper's trap taxonomy (ZeroDivisionError and the
        Overflow/ValueError pair are both ArithmeticError-adjacent, so
        the explicit isinstance order here is what keeps DIV_ZERO
        distinct from ARITH).
        """
        if isinstance(exc, Trap):
            if exc.rank is None:
                exc.rank = self.rank
            exc.cycle = cycle
            return exc
        if isinstance(exc, ZeroDivisionError):
            return Trap(TrapKind.DIV_ZERO, "integer division by zero",
                        rank=self.rank, cycle=cycle)
        if isinstance(exc, TypeError):
            return Trap(TrapKind.POISON, f"undefined value used: {exc}",
                        rank=self.rank, cycle=cycle)
        return Trap(TrapKind.ARITH, f"invalid arithmetic: {exc}",
                    rank=self.rank, cycle=cycle)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cml(self) -> int:
        """Current corrupted-memory-location count (0 without FPM)."""
        return len(self.fpm) if self.fpm is not None else 0

    @property
    def ever_contaminated(self) -> bool:
        return self.fpm is not None and self.fpm.ever_contaminated

    def wake(self) -> None:
        """Called by the MPI runtime when a blocking operation completed."""
        if self.status is MachineStatus.BLOCKED:
            self.status = MachineStatus.READY

    def __repr__(self) -> str:
        return (
            f"<Machine rank={self.rank}/{self.size} {self.status.value} "
            f"cycles={self.cycles} cml={self.cml}>"
        )
