"""Golden-trajectory state fingerprints for convergence pruning.

The paper's outcome distributions (Fig. 6) show that a large share of
injected faults end as Vanished or ONA: the corrupted state heals long
before the application finishes.  Once a faulted trial's world state is
*bit-identical* to the golden run's state at the same scheduler epoch,
the remainder of the trial is a pure deterministic replay of the golden
tail — executing it can only reproduce what golden profiling already
recorded.  This module captures a compact per-epoch digest of the
golden world so the scheduler can detect that re-convergence and splice
in the golden finals instead of simulating the tail.

Soundness argument (the contract the equivalence suite enforces):

* The simulator is deterministic: the next state of a job is a pure
  function of (machine states, MPI runtime state, scheduler epoch).
  One instruction is one cycle, quanta are fixed, and the round-robin
  order never changes.
* The canonical form hashed here covers the *complete* closure of
  state a compiled closure or the runtime can observe: per-rank status,
  cycles, iteration/output records, RNG streams, collective sequence
  numbers, pending MPI operations, the full call stack with register
  files (dual/shadow registers included — a tainted or un-healed
  register therefore blocks a match), live memory (stack + heap blocks
  + free lists, whose pop order steers future allocation), and the MPI
  queues and in-flight collectives.
* What is deliberately excluded cannot influence execution:
  reporting-only message statistics, injection event records, and the
  spent fault plan.  The scheduler only consults fingerprints once
  every armed fault has fired (``inj_next == 0`` on every rank) and —
  in FPM/taint modes — once every shadow table is empty, so the
  excluded injection state is inert and an empty shadow table is
  behaviourally identical to the golden run's empty table.
* Digests are keyed by scheduler *epoch*, and per-rank cycle counts
  are part of the digest, so a match implies the trial reaches every
  future epoch boundary exactly as the golden run did — including CML
  sample times and MPI interleaving.

Hashing goes through :func:`pickle.dumps` of a canonical tuple (dicts
sorted, fresh tuples) into BLAKE2b.  The built-in ``hash()`` is not
usable here: string hashing is randomized per process
(``PYTHONHASHSEED``), and fingerprints persist inside golden artifacts
that cross process and campaign boundaries.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Dict, Optional, Sequence, Tuple

from .machine import MachineStatus

#: digest width in bytes; 128 bits keeps collision probability
#: negligible (~2**-64 across billions of comparisons) at half the
#: storage of a full BLAKE2b digest
DIGEST_SIZE = 16

#: pinned pickle protocol so digests are stable across interpreter
#: invocations that share an artifact directory
_PICKLE_PROTOCOL = 4


def _canonical_memory(mem) -> tuple:
    """Live memory only: stack words, heap blocks, free lists.

    Cells under ``valid == 0`` hold stale garbage in a live process and
    are unreachable through any access path, so they are excluded.
    ``heap_blocks`` insertion order differs between a faulted trial and
    the golden run, hence the sort; ``free_lists`` bucket order is
    semantic (``malloc`` pops from the tail) and is preserved.

    Word content is canonicalised as raw ``int64`` array bytes plus the
    ``fkind`` tag bytes (one C-speed ``tobytes`` per region instead of a
    per-word Python tuple) — the tag bytes keep int-vs-float
    observability, since ``0`` and ``0.0`` share a bit pattern.
    """
    ci = mem.cells_i
    fk = mem.fkind
    sp = mem.sp
    return (
        sp,
        mem.hp,
        ci[1:sp].tobytes(),
        bytes(fk[1:sp]),
        tuple(sorted(
            (base, ci[base:base + size].tobytes(),
             bytes(fk[base:base + size]))
            for base, size in mem.heap_blocks.items()
        )),
        tuple(sorted(
            (size, tuple(bucket))
            for size, bucket in mem.free_lists.items()
        )),
        mem.live_words,
    )


def _canonical_machine(m) -> tuple:
    return (
        m.status.value,
        m.cycles,
        m.iteration_count,
        tuple(m.outputs),
        m.rng.state,
        m.inj_counter,
        m.coll_seq,
        tuple(sorted(m.pending.items())) if m.pending is not None else None,
        m.ret_val,
        m.ret_val_p,
        tuple(
            (fr.cfunc.name, tuple(fr.regs), fr.block, fr.ip,
             fr.saved_sp, fr.ret_dest, fr.ret_dest_p)
            for fr in m.call_stack
        ),
        _canonical_memory(m.memory),
    )


def fingerprint_world(machines: Sequence, runtime) -> bytes:
    """Digest of everything that determines the job's future execution."""
    queues, collectives, _stats = runtime.snapshot_state()
    canonical = (
        tuple(_canonical_machine(m) for m in machines),
        queues,
        collectives,
    )
    return hashlib.blake2b(
        pickle.dumps(canonical, protocol=_PICKLE_PROTOCOL),
        digest_size=DIGEST_SIZE,
    ).digest()


def quick_signature(machines: Sequence) -> tuple:
    """Cheap scalar pre-filter evaluated before the full digest.

    A strict superset of states match this compared to the digest, so a
    mismatch here soundly rejects without pickling live memory.
    """
    return tuple(
        (m.status.value, m.cycles, m.iteration_count, len(m.outputs),
         m.rng.state, m.inj_counter, m.coll_seq,
         m.memory.sp, m.memory.hp, m.memory.live_words)
        for m in machines
    )


class FingerprintIndex:
    """Per-epoch golden fingerprints plus the golden finals to splice.

    Captured once during golden profiling at a fixed cycle stride
    (unlike :class:`~repro.vm.snapshot.SnapshotStore`, the stride never
    thins — a digest is 16 bytes, so retention is never a concern), and
    persisted inside golden artifacts so pool workers and later
    campaigns share one capture pass.
    """

    def __init__(self, stride: int) -> None:
        #: capture stride in cycles of global virtual time (0 disables)
        self.stride = max(0, int(stride))
        #: scheduler epoch -> world digest
        self.digests: Dict[int, bytes] = {}
        #: scheduler epoch -> :func:`quick_signature` tuple
        self.quick: Dict[int, tuple] = {}
        #: scheduler epoch -> trace samples recorded up to (and
        #: including) that epoch — the split point for tail splicing
        self.sample_counts: Dict[int, int] = {}
        #: scheduler epoch -> (messages, words, contaminated msgs,
        #: contaminated words) so a spliced trial reports the same
        #: message totals as a full run
        self.stats_at: Dict[int, Tuple[int, int, int, int]] = {}
        self._next_at = self.stride
        self._capturing = True
        # Golden finals, frozen by :meth:`finalize`.
        self.final_cycles = 0
        self.final_rank_cycles: Tuple[int, ...] = ()
        self.final_outputs: Tuple[tuple, ...] = ()
        self.final_iterations: Tuple[int, ...] = ()
        self.final_inj_counts: Tuple[int, ...] = ()
        self.final_stats: Tuple[int, int, int, int] = (0, 0, 0, 0)
        #: full golden trace times / live-words series (final post-loop
        #: sample included), or None for non-FPM golden runs
        self.trace_times: Optional[Tuple[int, ...]] = None
        self.trace_live: Optional[Tuple[int, ...]] = None

    @property
    def enabled(self) -> bool:
        return self.stride > 0

    def __len__(self) -> int:
        return len(self.digests)

    def maybe_capture(self, t: int, epoch: int, machines: Sequence,
                      runtime, trace) -> None:
        """Capture at the stride mark, mirroring the snapshot cadence.

        Skips all-DONE epochs for the same reason
        :meth:`SnapshotStore.maybe_capture` does: the scheduler exits
        that epoch, so no trial can ever stand at it mid-run.
        """
        if not self._capturing or self.stride <= 0 or t < self._next_at:
            return
        if all(m.status is MachineStatus.DONE for m in machines):
            return
        self.digests[epoch] = fingerprint_world(machines, runtime)
        self.quick[epoch] = quick_signature(machines)
        self.sample_counts[epoch] = (
            len(trace.times) if trace is not None else 0
        )
        self.stats_at[epoch] = (
            runtime.messages_sent, runtime.words_sent,
            runtime.contaminated_messages, runtime.contaminated_words_sent,
        )
        self._next_at = t + self.stride

    def finalize(self, machines: Sequence, runtime, trace) -> None:
        """Freeze the golden finals at the end of the profiling run."""
        self.final_cycles = max(m.cycles for m in machines)
        self.final_rank_cycles = tuple(m.cycles for m in machines)
        self.final_outputs = tuple(tuple(m.outputs) for m in machines)
        self.final_iterations = tuple(m.iteration_count for m in machines)
        self.final_inj_counts = tuple(m.inj_counter for m in machines)
        self.final_stats = (
            runtime.messages_sent, runtime.words_sent,
            runtime.contaminated_messages, runtime.contaminated_words_sent,
        )
        if trace is not None:
            self.trace_times = tuple(trace.times)
            self.trace_live = tuple(trace.live_words)
        self._capturing = False

    # ------------------------------------------------------------------
    # Golden-artifact support
    # ------------------------------------------------------------------
    def dump_state(self) -> tuple:
        """Serializable form (plain data, picklable)."""
        return (
            self.stride,
            tuple(sorted(self.digests.items())),
            tuple(sorted(self.quick.items())),
            tuple(sorted(self.sample_counts.items())),
            tuple(sorted(self.stats_at.items())),
            self.final_cycles,
            self.final_rank_cycles,
            self.final_outputs,
            self.final_iterations,
            self.final_inj_counts,
            self.final_stats,
            self.trace_times,
            self.trace_live,
        )

    @classmethod
    def load_state(cls, state: tuple) -> "FingerprintIndex":
        """Rebuild a frozen index dumped by :meth:`dump_state`."""
        idx = cls(state[0])
        idx.digests = dict(state[1])
        idx.quick = dict(state[2])
        idx.sample_counts = dict(state[3])
        idx.stats_at = dict(state[4])
        (idx.final_cycles, idx.final_rank_cycles, idx.final_outputs,
         idx.final_iterations, idx.final_inj_counts, idx.final_stats,
         idx.trace_times, idx.trace_live) = state[5:13]
        idx._capturing = False
        return idx
