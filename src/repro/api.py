"""The one-import surface: ``repro.Session``.

Everything a study needs — golden profiling, fault-injection campaigns,
resume, observability, FPS model fitting — through one object::

    import repro

    s = repro.Session("lulesh", mode="fpm")
    golden = s.golden()
    result = s.campaign(trials=200, workers=4, observe="on")
    fps = s.fps()                       # Table 2, from the last campaign

The facade delegates to the long-standing call paths
(:class:`~repro.core.FaultPropagationFramework`,
:func:`~repro.inject.campaign.run_campaign`,
:func:`~repro.inject.engine.resume_campaign`) — those remain public and
unchanged; ``Session`` only packages them and normalises historical
keyword spellings (``n_trials``/``n_workers``/``wall_timeout``), which
still work but raise :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from .core.framework import FaultPropagationFramework
from .errors import CampaignError
from .inject.campaign import CampaignResult
from .models.fps import FPSResult

_MODES = ("blackbox", "fpm", "taint")

#: historical keyword spellings and their current names; accepted
#: everywhere the current name is, with a DeprecationWarning
_RENAMED_KWARGS = {
    "n_trials": "trials",
    "n_workers": "workers",
    "wall_timeout": "timeout",
}


def _modernise(kwargs: dict) -> dict:
    """Map deprecated kwarg spellings onto their current names."""
    out = dict(kwargs)
    for old, new in _RENAMED_KWARGS.items():
        if old not in out:
            continue
        warnings.warn(
            f"keyword {old!r} is deprecated, use {new!r}",
            DeprecationWarning,
            stacklevel=3,
        )
        if new in out and out[new] is not None:
            raise CampaignError(
                f"both {old!r} and {new!r} given; use only {new!r}"
            )
        out[new] = out.pop(old)
    return out


class Session:
    """One application in one analysis mode, ready to run campaigns.

    ``mode`` is ``"blackbox"`` (output-variation analysis, paper
    Sec. 4.2), ``"fpm"`` (dual-chain propagation analysis, Sec. 4.3) or
    ``"taint"``.  ``params`` forwards application build parameters
    (problem sizes etc.).  The session caches prepared state between
    calls — a second campaign skips golden re-profiling — and remembers
    its last campaign so :meth:`fps` needs no argument.
    """

    def __init__(self, app: str, *, mode: str = "fpm",
                 params: Optional[dict] = None, seed: int = 2025,
                 artifact_dir: Optional[str] = None) -> None:
        if mode not in _MODES:
            raise CampaignError(
                f"unknown mode {mode!r}; expected one of {_MODES}"
            )
        self.mode = mode
        self.seed = seed
        self.artifact_dir = artifact_dir
        self.framework = FaultPropagationFramework.for_app(
            app, **(params or {}))
        #: the most recent campaign (run or resumed), for :meth:`fps`
        self.last_campaign: Optional[CampaignResult] = None

    @property
    def app(self) -> str:
        return self.framework.app_name

    # ------------------------------------------------------------------
    def golden(self):
        """The app's golden (fault-free) profile in this session's mode."""
        return self.framework.prepared(self.mode).golden

    def campaign(self, trials: Optional[int] = None, *,
                 spec=None,
                 workers: Optional[int] = None,
                 observe=None, seed: Optional[int] = None,
                 **kwargs) -> CampaignResult:
        """Run a fault-injection campaign in this session's mode.

        Forwards to :meth:`FaultPropagationFramework.fpm_campaign` /
        :meth:`~FaultPropagationFramework.blackbox_campaign` (taint mode
        goes straight to :func:`~repro.inject.campaign.run_campaign`);
        every keyword those accept passes through.  ``observe`` follows
        :func:`~repro.inject.campaign.run_campaign`.

        Alternatively pass ``spec=``, a
        :class:`~repro.core.spec.CampaignSpec` carrying the whole
        campaign definition — it must name this session's app, and no
        other keyword may accompany it.
        """
        if spec is not None:
            from .core.spec import CampaignSpec
            from .inject.campaign import run_campaign
            if not isinstance(spec, CampaignSpec):
                raise CampaignError(
                    f"spec must be a CampaignSpec, got {type(spec).__name__}")
            if trials is not None or workers is not None \
                    or observe is not None or seed is not None or kwargs:
                raise CampaignError(
                    "pass either spec= or keyword arguments, not both")
            if spec.app != self.app:
                raise CampaignError(
                    f"spec is for app {spec.app!r}, but this session is "
                    f"{self.app!r}")
            if spec.mode != self.mode:
                raise CampaignError(
                    f"spec mode {spec.mode!r} does not match this "
                    f"session's mode {self.mode!r}")
            result = run_campaign(spec)
            self.last_campaign = result
            return result
        kwargs = _modernise(kwargs)
        for name, given in (("trials", trials), ("workers", workers)):
            if name in kwargs:
                if given is not None:
                    raise CampaignError(
                        f"both {name!r} and a deprecated spelling of it "
                        f"given; use only {name!r}"
                    )
        trials = kwargs.pop("trials", trials)
        workers = kwargs.pop("workers", workers)
        seed = self.seed if seed is None else seed
        if self.mode == "blackbox":
            result = self.framework.blackbox_campaign(
                trials, seed=seed, workers=workers, observe=observe,
                artifact_dir=kwargs.pop("artifact_dir", self.artifact_dir),
                **kwargs)
        elif self.mode == "fpm":
            result = self.framework.fpm_campaign(
                trials, seed=seed, workers=workers, observe=observe,
                artifact_dir=kwargs.pop("artifact_dir", self.artifact_dir),
                **kwargs)
        else:
            from .inject.campaign import run_campaign
            result = run_campaign(
                self.app, trials, mode=self.mode, seed=seed,
                workers=workers, observe=observe,
                params=self.framework.params,
                artifact_dir=kwargs.pop("artifact_dir", self.artifact_dir),
                **kwargs)
        self.last_campaign = result
        return result

    def resume(self, journal: str, **kwargs) -> CampaignResult:
        """Finish an interrupted journaled campaign of this app."""
        kwargs = _modernise(kwargs)
        result = self.framework.resume_campaign(journal, **kwargs)
        self.last_campaign = result
        return result

    @property
    def health(self):
        """Supervision health of the most recent campaign (or None).

        A :class:`~repro.inject.health.CampaignHealth`; check
        ``health.degraded`` / ``health.degradation_events`` to see
        whether the graceful-degradation ladder (pool shrink, serial
        fallback, journal disable) fired, and
        ``health.io_retries`` / ``health.journal_recovered_records`` /
        ``health.artifacts_quarantined`` for what the corruption-tolerant
        substrate absorbed.
        """
        if self.last_campaign is None:
            return None
        return self.last_campaign.health

    @property
    def degradation_events(self) -> list:
        """Degradation-ladder events of the most recent campaign."""
        health = self.health
        return list(health.degradation_events) if health is not None else []

    def fps(self, campaign: Optional[CampaignResult] = None) -> FPSResult:
        """Fault propagation speed (Table 2) from an FPM campaign.

        Defaults to this session's most recent campaign.
        """
        if campaign is None:
            campaign = self.last_campaign
        if campaign is None:
            raise CampaignError(
                "no campaign to fit; run session.campaign() first or pass "
                "one explicitly"
            )
        return self.framework.fps_factor(campaign)
