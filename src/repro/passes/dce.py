"""Dead code elimination for pure register-producing instructions.

Removes BinOp/Cmp/Cast/Copy instructions whose destination register is
never read, iterating to a fixpoint.  Loads are *not* removed even when
dead: a load can trap on a corrupted address, and deleting it would
change the failure behaviour the framework exists to measure.
"""

from __future__ import annotations

from typing import Set

from ..ir import BinOp, Cast, Cmp, Copy, Function, Module, Register

_PURE = (BinOp, Cmp, Cast, Copy)


def _used_registers(func: Function) -> Set[int]:
    used: Set[int] = set()
    for block in func:
        for inst in block:
            for op in inst.operands():
                if isinstance(op, Register):
                    used.add(op.index)
    return used


def eliminate_function(func: Function) -> int:
    """Remove dead pure instructions; returns total removed."""
    removed_total = 0
    while True:
        used = _used_registers(func)
        removed = 0
        for block in func:
            kept = []
            for inst in block:
                if isinstance(inst, _PURE) and inst.dest.index not in used:
                    removed += 1
                    continue
                kept.append(inst)
            block.instructions = kept
        removed_total += removed
        if removed == 0:
            return removed_total


def run(module: Module) -> None:
    for func in module:
        eliminate_function(func)
    module.passes_applied.append("dce")
