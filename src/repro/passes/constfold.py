"""Constant folding.

Folds binary operations, comparisons and casts whose operands are all
constants into register copies of the computed constant, and then lets
DCE clean up.  Optional — the standard pipelines keep the -O0-like shape
so measured baselines stay comparable — but useful for studying how
optimisation level shifts the injectable-site space (folded operations
can never be marked: their operands were never live registers).

Folding is trap-preserving: operations whose constant evaluation would
trap at runtime (integer division by zero, float->int of inf/NaN) are
left in place so the program still crashes at the same point.
"""

from __future__ import annotations

from ..errors import PassError
from ..ir import (
    BinOp,
    Cast,
    Cmp,
    Constant,
    Copy,
    FLOAT,
    INT,
    Module,
    PTR,
)
from ..vm.ops import BINOP_FUNCS, CAST_FUNCS, CMP_FUNCS


def _const(value) -> Constant:
    if isinstance(value, float):
        return Constant(FLOAT, value)
    return Constant(INT, value)


def _try_fold(inst):
    """Return a replacement Copy, or None when the instruction stays."""
    if isinstance(inst, BinOp):
        if not (isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant)):
            return None
        if inst.dest.type is PTR:
            return None  # folded addresses would dodge validity checks
        fn = BINOP_FUNCS[inst.op]
        try:
            value = fn(inst.lhs.value, inst.rhs.value)
        except ZeroDivisionError:
            return None  # keep the runtime trap
        if isinstance(value, float) and (value != value or value in
                                         (float("inf"), float("-inf"))):
            # fold NaN/inf results too — they are legitimate float values
            pass
        return Copy(inst.dest, Constant(inst.dest.type, value))
    if isinstance(inst, Cmp):
        if not (isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant)):
            return None
        fn = CMP_FUNCS[(inst.kind, inst.pred)]
        return Copy(inst.dest, Constant(INT, fn(inst.lhs.value, inst.rhs.value)))
    if isinstance(inst, Cast):
        if not isinstance(inst.src, Constant):
            return None
        fn = CAST_FUNCS[inst.op]
        try:
            value = fn(inst.src.value)
        except (OverflowError, ValueError):
            return None  # fptosi of inf/NaN traps at runtime; keep it
        return Copy(inst.dest, Constant(inst.dest.type, value))
    return None


def _propagate_copies(func) -> bool:
    """Replace uses of registers holding known constants with the constant.

    Only registers assigned exactly once (by a constant Copy) propagate —
    multiply-assigned registers (loop counters) are left alone.
    """
    assign_counts = {}
    const_defs = {}
    for block in func:
        for inst in block:
            if inst.dest is not None:
                idx = inst.dest.index
                assign_counts[idx] = assign_counts.get(idx, 0) + 1
                if isinstance(inst, Copy) and isinstance(inst.src, Constant):
                    const_defs[idx] = inst.src
    for p in func.params:
        assign_counts[p.index] = assign_counts.get(p.index, 0) + 1
    single_consts = {
        idx: c for idx, c in const_defs.items() if assign_counts[idx] == 1
    }
    if not single_consts:
        return False

    changed = False

    def mapping(v):
        nonlocal changed
        idx = getattr(v, "index", None)
        if idx is not None and idx in single_consts:
            changed = True
            return single_consts[idx]
        return v

    for block in func:
        for inst in block:
            inst.replace_operands(mapping)
    return changed


def run(module: Module, max_rounds: int = 8) -> None:
    if "faultinject" in module.passes_applied:
        raise PassError(
            "constfold must run before faultinject: folding after site "
            "marking would silently delete injection sites"
        )
    for func in module:
        for _ in range(max_rounds):
            folded = False
            for block in func:
                new_insts = []
                for inst in block:
                    replacement = _try_fold(inst)
                    if replacement is not None:
                        folded = True
                        new_insts.append(replacement)
                    else:
                        new_insts.append(inst)
                block.instructions = new_insts
            propagated = _propagate_copies(func)
            if not folded and not propagated:
                break
    module.passes_applied.append("constfold")
