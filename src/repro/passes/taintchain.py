"""Naive taint-propagation transformation — the over-approximating baseline.

Structurally parallel to :mod:`repro.passes.dualchain`, but the shadow
chain carries one-bit *taint* instead of pristine values: an operation's
result is tainted iff any register input is tainted ("the output of an
instruction becomes corrupted if at least one of the inputs is
corrupted" — the assumption the paper's Sec. 3 explicitly rejects as a
source of "large overestimation").

Comparing a taint build's CML counts with the dual-chain's exact counts
on identical fault plans quantifies that overestimation: taint can never
see masking (``b = a >> 2``), value re-convergence, or healing stores of
coincidentally equal values.
"""

from __future__ import annotations

from typing import List

from ..errors import PassError
from ..ir import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Constant,
    Copy,
    FpmLoad,
    FpmStore,
    Function,
    INT,
    Load,
    Module,
    Register,
    Ret,
    Store,
    Value,
    const_int,
)
from ..vm.intrinsics import get_intrinsic
from .dualchain import _collect_registers

_ZERO = const_int(0)


def transform_function(func: Function) -> None:
    regs = _collect_registers(func)
    for reg in list(regs.values()):
        reg.shadow = func.new_reg(INT, reg.name + ".t")

    def sh(value: Value) -> Value:
        """Taint of an operand: shadow register, or 0 for constants."""
        if isinstance(value, Register):
            return value.shadow
        return _ZERO

    def taint_combine(dest: Register, operands, out: List) -> None:
        """dest.shadow = OR of the operands' taints."""
        taints = [v.shadow for v in operands if isinstance(v, Register)]
        if not taints:
            inst = Copy(dest.shadow, _ZERO)
        elif len(taints) == 1:
            inst = Copy(dest.shadow, taints[0])
        else:
            acc = taints[0]
            for extra in taints[1:-1]:
                tmp = func.new_reg(INT)
                inst = BinOp(tmp, "or", acc, extra)
                inst.secondary = True
                out.append(inst)
                acc = tmp
            inst = BinOp(dest.shadow, "or", acc, taints[-1])
        inst.secondary = True
        out.append(inst)

    new_params: List[Register] = []
    for p in func.params:
        new_params.append(p)
        new_params.append(p.shadow)
    func.params = new_params
    func.is_dual = True

    for block in func:
        out: List = []
        for inst in block:
            if isinstance(inst, (BinOp, Cmp)):
                out.append(inst)
                taint_combine(inst.dest, (inst.lhs, inst.rhs), out)
            elif isinstance(inst, Cast):
                out.append(inst)
                taint_combine(inst.dest, (inst.src,), out)
            elif isinstance(inst, Copy):
                out.append(inst)
                clone = Copy(inst.dest.shadow, sh(inst.src))
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Alloca):
                out.append(inst)
                clone = Copy(inst.dest.shadow, _ZERO)
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Load):
                fused = FpmLoad(inst.dest, inst.dest.shadow,
                                inst.addr, sh(inst.addr))
                fused.taint = True
                fused.inject_site = inst.inject_site
                out.append(fused)
            elif isinstance(inst, Store):
                fused = FpmStore(inst.value, sh(inst.value),
                                 inst.addr, sh(inst.addr))
                fused.taint = True
                fused.inject_site = inst.inject_site
                out.append(fused)
            elif isinstance(inst, Call):
                spec = get_intrinsic(inst.callee)
                if spec is None:
                    new_args: List[Value] = []
                    for a in inst.args:
                        new_args.append(a)
                        new_args.append(sh(a))
                    inst.args = new_args
                    if inst.dest is not None:
                        inst.dest_p = inst.dest.shadow
                    out.append(inst)
                else:
                    out.append(inst)
                    if inst.dest is not None:
                        if spec.pure:
                            taint_combine(inst.dest, tuple(inst.args), out)
                        else:
                            # rand()/malloc() results are not derived from
                            # the fault; MPI taint travels via the runtime.
                            clone = Copy(inst.dest.shadow, _ZERO)
                            clone.secondary = True
                            out.append(clone)
            elif isinstance(inst, Ret):
                if inst.value is not None:
                    inst.value_p = sh(inst.value)
                out.append(inst)
            elif isinstance(inst, (Br, CondBr)):
                out.append(inst)
            elif isinstance(inst, (FpmLoad, FpmStore)):
                raise PassError("taintchain applied on transformed IR")
            else:  # pragma: no cover
                raise PassError(f"taintchain cannot handle {inst.opcode!r}")
        block.instructions = out


def run(module: Module) -> None:
    if "taintchain" in module.passes_applied or \
            "dualchain" in module.passes_applied:
        raise PassError("shadow-chain transformation applied twice")
    for func in module:
        transform_function(func)
    module.passes_applied.append("taintchain")
