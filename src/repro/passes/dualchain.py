"""The FPM dual-chain transformation (paper Sec. 3.2, Figs. 2-3).

Rewrites every function so that each computation happens twice:

* the **primary chain** — the original instructions, operating on
  potentially-corrupted registers (fault injection only ever touches
  primary registers);
* the **secondary chain** — replicas of all arithmetic operating on
  *pristine* shadow registers, tracking what the values would be had no
  fault occurred along the current control path.

Loads fuse into ``fpm_load`` (the paper's ``fpm_fetch``: the pristine
value of a contaminated location comes from the runtime hash table);
stores fuse into ``fpm_store`` (compare primary vs pristine, update the
hash table, handle corrupted store addresses).  Function signatures
double — each parameter is followed by its pristine twin, and returns
carry a (primary, pristine) pair.  Pure library intrinsics are evaluated
a second time with pristine arguments; impure intrinsics run once and
their result is copied to the shadow register.

Control flow (branches) always consumes primary registers, so the
secondary chain follows the faulty control path — exactly the behaviour
of the paper's replicated instruction streams.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PassError
from ..ir import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Constant,
    Copy,
    FpmLoad,
    FpmStore,
    Function,
    Load,
    Module,
    Register,
    Ret,
    Store,
    Value,
)
from ..vm.intrinsics import get_intrinsic


def _collect_registers(func: Function) -> Dict[int, Register]:
    regs: Dict[int, Register] = {p.index: p for p in func.params}
    for block in func:
        for inst in block:
            if inst.dest is not None:
                regs[inst.dest.index] = inst.dest
            for op in inst.operands():
                if isinstance(op, Register):
                    regs[op.index] = op
    return regs


def transform_function(func: Function) -> None:
    regs = _collect_registers(func)
    # Create one pristine shadow per register.
    for reg in list(regs.values()):
        reg.shadow = func.new_reg(reg.type, reg.name + ".p")

    def sh(value: Value) -> Value:
        """Pristine twin of an operand: shadow register or same constant."""
        if isinstance(value, Register):
            return value.shadow
        return value

    # Double the parameter list: p0, p0.p, p1, p1.p, ...
    new_params: List[Register] = []
    for p in func.params:
        new_params.append(p)
        new_params.append(p.shadow)
    func.params = new_params
    func.is_dual = True

    for block in func:
        out: List = []
        for inst in block:
            if isinstance(inst, BinOp):
                out.append(inst)
                clone = BinOp(inst.dest.shadow, inst.op, sh(inst.lhs), sh(inst.rhs))
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Cmp):
                out.append(inst)
                clone = Cmp(inst.dest.shadow, inst.kind, inst.pred,
                            sh(inst.lhs), sh(inst.rhs))
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Cast):
                out.append(inst)
                clone = Cast(inst.dest.shadow, inst.op, sh(inst.src))
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Copy):
                out.append(inst)
                clone = Copy(inst.dest.shadow, sh(inst.src))
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Alloca):
                # The allocation itself is shared; the pristine pointer is
                # identical to the primary one.
                out.append(inst)
                clone = Copy(inst.dest.shadow, inst.dest)
                clone.secondary = True
                out.append(clone)
            elif isinstance(inst, Load):
                fused = FpmLoad(inst.dest, inst.dest.shadow,
                                inst.addr, sh(inst.addr))
                fused.inject_site = inst.inject_site
                out.append(fused)
            elif isinstance(inst, Store):
                fused = FpmStore(inst.value, sh(inst.value),
                                 inst.addr, sh(inst.addr))
                fused.inject_site = inst.inject_site
                out.append(fused)
            elif isinstance(inst, Call):
                spec = get_intrinsic(inst.callee)
                if spec is None:
                    # User function: interleave (primary, pristine) args;
                    # the callee (also transformed) returns a dual pair.
                    new_args: List[Value] = []
                    for a in inst.args:
                        new_args.append(a)
                        new_args.append(sh(a))
                    inst.args = new_args
                    if inst.dest is not None:
                        inst.dest_p = inst.dest.shadow
                    out.append(inst)
                elif spec.pure:
                    # Library call: evaluate twice (paper: "for library
                    # function calls such as sin() ... execute the function
                    # twice").
                    out.append(inst)
                    if inst.dest is not None:
                        clone = Call(inst.dest.shadow, inst.callee,
                                     [sh(a) for a in inst.args])
                        clone.secondary = True
                        out.append(clone)
                else:
                    # Impure: run once with primary arguments to avoid
                    # duplicated side effects; shadow result mirrors the
                    # primary (MPI buffer contamination is handled by the
                    # runtime protocol, not by replication).
                    out.append(inst)
                    if inst.dest is not None:
                        clone = Copy(inst.dest.shadow, inst.dest)
                        clone.secondary = True
                        out.append(clone)
            elif isinstance(inst, Ret):
                if inst.value is not None:
                    inst.value_p = sh(inst.value)
                out.append(inst)
            elif isinstance(inst, (Br, CondBr)):
                out.append(inst)  # control flow follows the primary chain
            elif isinstance(inst, (FpmLoad, FpmStore)):
                raise PassError("dualchain applied twice")
            else:  # pragma: no cover - future instruction kinds
                raise PassError(f"dualchain cannot handle {inst.opcode!r}")
        block.instructions = out


def run(module: Module) -> None:
    if "dualchain" in module.passes_applied or \
            "taintchain" in module.passes_applied:
        raise PassError("shadow-chain transformation applied twice")
    for func in module:
        transform_function(func)
    module.passes_applied.append("dualchain")
