"""Pass registry, pipelines, and the pipeline runner."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Sequence, Tuple, Union

from ..errors import PassError
from ..ir import Module, verify_module
from . import constfold, dce, dualchain, faultinject, mem2reg, taintchain

#: name -> pass entry point ``run(module, **options)``
REGISTRY: Dict[str, Callable] = {
    "constfold": constfold.run,
    "mem2reg": mem2reg.run,
    "dce": dce.run,
    "faultinject": faultinject.run,
    "dualchain": dualchain.run,
    "taintchain": taintchain.run,
}

#: Black-box build: fault injection only — what a plain LLFI binary is.
BLACKBOX_PIPELINE: Tuple[str, ...] = ("mem2reg", "dce", "faultinject")
#: FPM build: fault injection + dual-chain propagation tracking.
FPM_PIPELINE: Tuple[str, ...] = ("mem2reg", "dce", "faultinject", "dualchain")

PassSpec = Union[str, Tuple[str, Mapping]]


def run_passes(
    module: Module,
    passes: Sequence[PassSpec],
    *,
    verify: bool = True,
) -> Module:
    """Apply a pass pipeline in order, optionally verifying after each.

    Each element is a pass name or ``(name, options-dict)``.  The module is
    mutated in place and returned for chaining.
    """
    for spec in passes:
        if isinstance(spec, str):
            name, options = spec, {}
        else:
            name, options = spec[0], dict(spec[1])
        fn = REGISTRY.get(name)
        if fn is None:
            raise PassError(f"unknown pass {name!r}")
        fn(module, **options)
        if verify:
            verify_module(module)
    return module


def pipeline_for_mode(mode: str, inject_kinds: Iterable[str] = ("arith",)):
    """Standard pipeline for a build mode: "blackbox" or "fpm"."""
    inject = ("faultinject", {"kinds": tuple(inject_kinds)})
    if mode == "blackbox":
        return ("mem2reg", "dce", inject)
    if mode == "fpm":
        return ("mem2reg", "dce", inject, "dualchain")
    if mode == "taint":
        return ("mem2reg", "dce", inject, "taintchain")
    raise PassError(f"unknown build mode {mode!r}")
