"""LLFI++ fault-site marking pass.

Assigns a static injection-site id to every instruction whose source
registers are fault-injection targets.  At run time the VM counts dynamic
executions of marked instructions; a fault plan names an occurrence to
corrupt, which reproduces LLFI's model of flipping a bit in a live
register "at specific program points" (paper Sec. 3.1).

Site kinds (paper Sec. 2: "faults are injected into the source register
of both arithmetic and load/store operations"):

* ``arith`` — data arithmetic: BinOp except pointer ops, plus casts;
* ``cmp``   — comparison source registers (LLVM treats icmp/fcmp as a
  separate class from binary arithmetic, and so does the paper);
* ``ptr``   — pointer arithmetic (padd/psub), i.e. address computation;
* ``mem``   — Load/Store source registers (address and stored value).

The experiments in Sec. 4.2 use arithmetic registers ("but other kinds of
instructions can also be targeted by LLFI++"), so ``arith`` is the
default; ``ptr`` and ``mem`` are opt-in.  Keeping address computation out
of the default matches the proportions of real HPC binaries: MiniHPC
programs are tiny, so indexing arithmetic is a far larger *fraction* of
their instruction mix than in LULESH/LAMMPS-scale codes, and injecting
into it uniformly would grossly over-produce segfaults.

Must run *before* the dual-chain pass: dualchain preserves site marks on
primary-chain instructions only, keeping occurrence counting identical
between black-box and FPM builds of the same program.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import PassError
from ..ir import PTR_BINOPS, BinOp, Cast, Cmp, Load, Module, Register, Store

VALID_KINDS = ("arith", "cmp", "ptr", "mem")


def site_kind(inst) -> str:
    """Classify an instruction for site marking ('' = never injectable)."""
    if isinstance(inst, BinOp):
        return "ptr" if inst.op in PTR_BINOPS else "arith"
    if isinstance(inst, Cast):
        return "arith"
    if isinstance(inst, Cmp):
        return "cmp"
    if isinstance(inst, (Load, Store)):
        return "mem"
    return ""


def _has_register_operand(inst) -> bool:
    return any(isinstance(op, Register) for op in inst.operands())


def run(module: Module, kinds: Iterable[str] = ("arith",)) -> None:
    if "dualchain" in module.passes_applied or \
            "taintchain" in module.passes_applied:
        raise PassError("faultinject must run before the shadow-chain pass")
    wanted = set()
    for kind in kinds:
        if kind not in VALID_KINDS:
            raise PassError(f"unknown injection site kind {kind!r}")
        wanted.add(kind)

    site = module.num_inject_sites
    for func in module:
        if func.attributes.get("no_instrument"):
            continue
        for block in func:
            for inst in block:
                if site_kind(inst) in wanted and _has_register_operand(inst):
                    inst.inject_site = site
                    site += 1
    module.num_inject_sites = site
    module.passes_applied.append("faultinject")
