"""Scalar promotion (mem2reg).

The frontend lowers every local variable to a stack slot (clang -O0
style).  This pass promotes single-word allocas whose address is only
ever used directly by loads and stores into virtual registers, mirroring
LLVM's mem2reg.  Because the IR uses mutable registers, promotion needs
no phi nodes: the slot simply becomes one dedicated register, loads
become copies out of it and stores copies into it.

This pass matters for fidelity, not just speed: after promotion, scalar
temporaries live in *registers* (where LLFI injects faults and where the
processor can mask them) while arrays and address-taken variables live in
*memory* (where the FPM counts contaminated locations) — the same split a
real LLVM-compiled binary has.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir import (
    Alloca,
    Copy,
    Function,
    Load,
    Module,
    Register,
    Store,
)


def _collect_promotable(func: Function) -> Dict[int, Alloca]:
    """Single-word allocas whose pointer never escapes a load/store addr."""
    candidates: Dict[int, Alloca] = {}
    for block in func:
        for inst in block:
            if isinstance(inst, Alloca) and inst.count == 1:
                candidates[inst.dest.index] = inst

    if not candidates:
        return candidates

    disqualified: Set[int] = set()
    for block in func:
        for inst in block:
            if isinstance(inst, Load):
                # addr position is fine; nothing else to check
                continue
            if isinstance(inst, Store):
                # addr position is fine, but storing the slot's *address*
                # as a value lets it escape.
                v = inst.value
                if isinstance(v, Register) and v.index in candidates:
                    disqualified.add(v.index)
                continue
            for op in inst.operands():
                if isinstance(op, Register) and op.index in candidates:
                    disqualified.add(op.index)
    for idx in disqualified:
        candidates.pop(idx, None)
    return candidates


def _slot_type(func: Function, slot_indices: Set[int]) -> Dict[int, object]:
    """Infer each promotable slot's value type from its loads/stores.

    Slots accessed with inconsistent types are dropped from promotion
    (cannot happen with frontend-generated IR, but hand-built IR may).
    """
    types: Dict[int, object] = {}
    bad: Set[int] = set()
    for block in func:
        for inst in block:
            if isinstance(inst, Load) and isinstance(inst.addr, Register) \
                    and inst.addr.index in slot_indices:
                t = inst.dest.type
            elif isinstance(inst, Store) and isinstance(inst.addr, Register) \
                    and inst.addr.index in slot_indices:
                t = inst.value.type
            else:
                continue
            idx = inst.addr.index
            prev = types.get(idx)
            if prev is None:
                types[idx] = t
            elif prev is not t:
                bad.add(idx)
    for idx in bad:
        types.pop(idx, None)
    return types


def promote_function(func: Function) -> int:
    """Promote eligible slots in one function; returns the count promoted."""
    candidates = _collect_promotable(func)
    if not candidates:
        return 0
    types = _slot_type(func, set(candidates))

    # Slots that are never loaded nor stored: drop the alloca entirely.
    promoted: Dict[int, Optional[Register]] = {}
    for idx, alloca in candidates.items():
        if idx in types:
            promoted[idx] = func.new_reg(types[idx], alloca.var_name or f"v{idx}")
        else:
            promoted[idx] = None  # dead slot

    for block in func:
        new_insts = []
        for inst in block:
            if isinstance(inst, Alloca) and inst.dest.index in promoted:
                continue  # slot no longer exists
            if isinstance(inst, Load) and isinstance(inst.addr, Register) \
                    and inst.addr.index in promoted:
                vreg = promoted[inst.addr.index]
                new_insts.append(Copy(inst.dest, vreg))
                continue
            if isinstance(inst, Store) and isinstance(inst.addr, Register) \
                    and inst.addr.index in promoted:
                vreg = promoted[inst.addr.index]
                if vreg is not None:
                    new_insts.append(Copy(vreg, inst.value))
                # store to a never-loaded slot is dead; drop it
                continue
            new_insts.append(inst)
        block.instructions = new_insts
    return len(promoted)


def run(module: Module) -> None:
    for func in module:
        promote_function(func)
    module.passes_applied.append("mem2reg")
