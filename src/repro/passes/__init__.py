"""Compiler passes: the instrumentation half of the framework.

``mem2reg``/``dce``/``constfold`` are conventional cleanups that make
register/memory residency realistic; ``faultinject`` is the LLFI++
site-marking pass; ``dualchain`` is the paper's FPM source-to-source
transformation; ``taintchain`` is the naive over-approximating baseline
the paper argues against (kept for the ablation benchmarks).
"""

from . import constfold, dce, dualchain, faultinject, mem2reg, taintchain
from .pass_manager import (
    BLACKBOX_PIPELINE,
    FPM_PIPELINE,
    REGISTRY,
    pipeline_for_mode,
    run_passes,
)

__all__ = [
    "BLACKBOX_PIPELINE", "FPM_PIPELINE", "REGISTRY", "constfold", "dce",
    "dualchain",
    "faultinject", "mem2reg", "pipeline_for_mode", "run_passes", "taintchain",
]
