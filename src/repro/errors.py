"""Exception hierarchy for the repro framework.

Every layer raises a subclass of :class:`ReproError` so callers can
distinguish framework failures from bugs in user programs (which surface
as :class:`~repro.vm.traps.Trap` during execution).
"""

from __future__ import annotations

import errno
import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, TypeVar


class ReproError(Exception):
    """Base class for all framework-level errors."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class VerifierError(IRError):
    """The IR verifier found a structural or type error."""


class FrontendError(ReproError):
    """Base class for MiniHPC compilation errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in MiniHPC source."""


class ParseError(FrontendError):
    """Syntax error in MiniHPC source."""


class SemanticError(FrontendError):
    """Type or scoping error in MiniHPC source."""


class PassError(ReproError):
    """A compiler pass was applied in an invalid state or order."""


class MPIError(ReproError):
    """Misuse of the simulated MPI runtime detected by the framework."""


class SnapshotError(ReproError):
    """Snapshot fast-forward misuse or equivalence violation.

    Raised when a world snapshot cannot be captured or restored, when a
    restore target is incompatible with the armed fault plan, or — the
    serious one — when the mandatory equivalence check finds a restored
    trial that is not bit-identical to its cold re-execution.
    """


class CampaignError(ReproError):
    """Invalid fault-injection campaign configuration."""


class ArtifactError(CampaignError):
    """A golden artifact is unreadable, corrupt, or incompatible.

    Load paths treat these as *soft* failures — the campaign falls back
    to re-profiling the golden run — but the error distinguishes an
    integrity violation (tampered/truncated payload, rejected) from a
    stale schema version (written by an older framework, re-profiled).
    """


class HarnessError(CampaignError):
    """The campaign harness itself failed (not the application under test).

    Application failures (traps, deadlocks, hangs within the cycle
    budget) are *outcomes* — they classify as Crashed.  Harness failures
    are everything that kills or wedges the machinery *around* a trial:
    a worker process dying, a trial exceeding its wall-clock watchdog,
    an unexpected exception inside the trial driver.
    """


class TrialTimeoutError(HarnessError):
    """A trial exceeded its wall-clock watchdog budget."""


class WorkerCrashError(HarnessError):
    """A campaign worker process died while running a trial."""


class JournalError(CampaignError):
    """A campaign journal is missing, malformed, or inconsistent with
    the campaign it is being resumed into."""


class FailureKind(Enum):
    """Structured taxonomy of harness failures (engine retry/quarantine).

    Recorded on every ``HARNESS_FAILURE`` trial so campaigns never
    silently drop a trial — the journal and health summary say exactly
    how the harness lost it.
    """

    #: trial exceeded the per-trial wall-clock watchdog
    TIMEOUT = "timeout"
    #: the worker process died (segfault, OOM-kill, os._exit, ...)
    WORKER_CRASH = "worker_crash"
    #: the trial raised an unexpected exception inside the worker
    EXCEPTION = "exception"


class ErrorClass(Enum):
    """Retry-routing classification of a harness error.

    Errors are routing signals, not hard stops: a classification decides
    whether the failed operation is retried (and how), not merely
    reported.  The taxonomy follows production retry policy: transient
    conditions clear on their own, retriable ones may succeed on a
    bounded re-execution, permanent ones never will, and fatal ones must
    stop the campaign immediately.
    """

    #: temporary external condition (EAGAIN, timeout, contention) —
    #: retry with exponential backoff, expected to clear
    TRANSIENT = "transient"
    #: a bounded re-execution may succeed (crashed worker, watchdog
    #: kill, unexpected trial exception)
    RETRIABLE = "retriable"
    #: will not resolve with retry (bad input, corrupt artifact,
    #: missing file, invalid configuration)
    PERMANENT = "permanent"
    #: stop everything now (interrupt, interpreter shutdown, OOM)
    FATAL = "fatal"


#: errno values that signal a transient OS-level condition
_TRANSIENT_ERRNOS = frozenset(
    getattr(errno, name)
    for name in ("EAGAIN", "EWOULDBLOCK", "EBUSY", "EINTR", "ETIMEDOUT",
                 "ECONNRESET", "ECONNREFUSED", "ESTALE", "ENOBUFS")
    if hasattr(errno, name)
)


def classify_exception(exc: BaseException) -> ErrorClass:
    """Map an exception to its :class:`ErrorClass` routing decision.

    The mapping is intentionally conservative: anything unrecognised is
    RETRIABLE (the engine already bounds re-execution with
    ``max_retries``), while only provably-hopeless errors are PERMANENT
    and only process-level emergencies are FATAL.
    """
    if isinstance(exc, (KeyboardInterrupt, SystemExit, MemoryError)):
        return ErrorClass.FATAL
    if isinstance(exc, (TimeoutError, ConnectionError, InterruptedError,
                        BlockingIOError)):
        return ErrorClass.TRANSIENT
    if isinstance(exc, OSError):
        if exc.errno in _TRANSIENT_ERRNOS:
            return ErrorClass.TRANSIENT
        if isinstance(exc, (FileNotFoundError, PermissionError,
                            IsADirectoryError, NotADirectoryError)):
            return ErrorClass.PERMANENT
        return ErrorClass.RETRIABLE
    if isinstance(exc, (TrialTimeoutError, WorkerCrashError)):
        return ErrorClass.RETRIABLE
    if isinstance(exc, (ArtifactError, JournalError)):
        # corrupt on-disk state: retrying the same read cannot help;
        # recovery is quarantine + re-materialisation, not a retry
        return ErrorClass.PERMANENT
    if isinstance(exc, CampaignError):
        return ErrorClass.PERMANENT
    if isinstance(exc, (ValueError, TypeError, KeyError, AttributeError)):
        return ErrorClass.PERMANENT
    return ErrorClass.RETRIABLE


_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    The jitter is a pure function of ``(seed, token, attempt)`` — no
    global RNG state is consumed — so a resumed campaign that replays
    the same retries sleeps the same delays and stays bit-identical.
    Delays follow ``base_delay * 2**attempt`` capped at ``max_delay``,
    plus up to 50% deterministic jitter (decorrelating workers that
    fail simultaneously).
    """

    base_delay: float = 0.05
    max_delay: float = 2.0
    max_attempts: int = 4
    seed: int = 0

    @classmethod
    def from_settings(cls, seed: int = 0) -> "RetryPolicy":
        """Build from REPRO_RETRY_BASE_DELAY / _MAX_DELAY / _MAX_ATTEMPTS."""
        from .core.settings import current_settings

        s = current_settings()
        return cls(
            base_delay=s.retry_base_delay,
            max_delay=s.retry_max_delay,
            max_attempts=s.retry_max_attempts,
            seed=seed,
        )

    def jitter_fraction(self, token: str, attempt: int) -> float:
        """Deterministic uniform [0, 1) draw for one retry decision."""
        digest = hashlib.sha256(
            f"{self.seed}:{token}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before re-attempt number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        jitter = 0.5 * raw * self.jitter_fraction(token, attempt)
        return min(self.max_delay, raw + jitter)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Route one failure: True = back off and retry, False = give up."""
        klass = classify_exception(exc)
        if klass in (ErrorClass.FATAL, ErrorClass.PERMANENT):
            return False
        return attempt < self.max_attempts

    def call(self, fn: Callable[[], _T], *, token: str = "",
             on_retry: Optional[Callable[[BaseException, int, float],
                                         None]] = None) -> _T:
        """Run ``fn`` under this policy; re-raises when retries exhaust.

        ``on_retry(exc, attempt, delay)`` is invoked before each backoff
        sleep (metrics/health accounting hook).
        """
        import time as _time

        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as exc:
                if not self.should_retry(exc, attempt):
                    raise
                pause = self.delay(attempt, token)
                if on_retry is not None:
                    on_retry(exc, attempt, pause)
                _time.sleep(pause)
                attempt += 1


class ModelError(ReproError):
    """Fault-propagation model fitting or evaluation failure."""


class ObservabilityError(ReproError):
    """Malformed trace/metrics data in the observability layer.

    Raised when a trace JSONL file fails schema validation, a metrics
    exposition is not well-formed, or incompatible registries are
    merged.  Never raised on the recording path: emitters are no-ops
    when observability is off and best-effort when on, so instrumenting
    a campaign cannot take the campaign down.
    """
