"""Exception hierarchy for the repro framework.

Every layer raises a subclass of :class:`ReproError` so callers can
distinguish framework failures from bugs in user programs (which surface
as :class:`~repro.vm.traps.Trap` during execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework-level errors."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class VerifierError(IRError):
    """The IR verifier found a structural or type error."""


class FrontendError(ReproError):
    """Base class for MiniHPC compilation errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in MiniHPC source."""


class ParseError(FrontendError):
    """Syntax error in MiniHPC source."""


class SemanticError(FrontendError):
    """Type or scoping error in MiniHPC source."""


class PassError(ReproError):
    """A compiler pass was applied in an invalid state or order."""


class MPIError(ReproError):
    """Misuse of the simulated MPI runtime detected by the framework."""


class CampaignError(ReproError):
    """Invalid fault-injection campaign configuration."""


class ModelError(ReproError):
    """Fault-propagation model fitting or evaluation failure."""
