"""Exception hierarchy for the repro framework.

Every layer raises a subclass of :class:`ReproError` so callers can
distinguish framework failures from bugs in user programs (which surface
as :class:`~repro.vm.traps.Trap` during execution).
"""

from __future__ import annotations

from enum import Enum


class ReproError(Exception):
    """Base class for all framework-level errors."""


class IRError(ReproError):
    """Malformed IR detected while building or verifying a module."""


class VerifierError(IRError):
    """The IR verifier found a structural or type error."""


class FrontendError(ReproError):
    """Base class for MiniHPC compilation errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        if line:
            message = f"{line}:{col}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid token in MiniHPC source."""


class ParseError(FrontendError):
    """Syntax error in MiniHPC source."""


class SemanticError(FrontendError):
    """Type or scoping error in MiniHPC source."""


class PassError(ReproError):
    """A compiler pass was applied in an invalid state or order."""


class MPIError(ReproError):
    """Misuse of the simulated MPI runtime detected by the framework."""


class SnapshotError(ReproError):
    """Snapshot fast-forward misuse or equivalence violation.

    Raised when a world snapshot cannot be captured or restored, when a
    restore target is incompatible with the armed fault plan, or — the
    serious one — when the mandatory equivalence check finds a restored
    trial that is not bit-identical to its cold re-execution.
    """


class CampaignError(ReproError):
    """Invalid fault-injection campaign configuration."""


class ArtifactError(CampaignError):
    """A golden artifact is unreadable, corrupt, or incompatible.

    Load paths treat these as *soft* failures — the campaign falls back
    to re-profiling the golden run — but the error distinguishes an
    integrity violation (tampered/truncated payload, rejected) from a
    stale schema version (written by an older framework, re-profiled).
    """


class HarnessError(CampaignError):
    """The campaign harness itself failed (not the application under test).

    Application failures (traps, deadlocks, hangs within the cycle
    budget) are *outcomes* — they classify as Crashed.  Harness failures
    are everything that kills or wedges the machinery *around* a trial:
    a worker process dying, a trial exceeding its wall-clock watchdog,
    an unexpected exception inside the trial driver.
    """


class TrialTimeoutError(HarnessError):
    """A trial exceeded its wall-clock watchdog budget."""


class WorkerCrashError(HarnessError):
    """A campaign worker process died while running a trial."""


class JournalError(CampaignError):
    """A campaign journal is missing, malformed, or inconsistent with
    the campaign it is being resumed into."""


class FailureKind(Enum):
    """Structured taxonomy of harness failures (engine retry/quarantine).

    Recorded on every ``HARNESS_FAILURE`` trial so campaigns never
    silently drop a trial — the journal and health summary say exactly
    how the harness lost it.
    """

    #: trial exceeded the per-trial wall-clock watchdog
    TIMEOUT = "timeout"
    #: the worker process died (segfault, OOM-kill, os._exit, ...)
    WORKER_CRASH = "worker_crash"
    #: the trial raised an unexpected exception inside the worker
    EXCEPTION = "exception"


class ModelError(ReproError):
    """Fault-propagation model fitting or evaluation failure."""


class ObservabilityError(ReproError):
    """Malformed trace/metrics data in the observability layer.

    Raised when a trace JSONL file fails schema validation, a metrics
    exposition is not well-formed, or incompatible registries are
    merged.  Never raised on the recording path: emitters are no-ops
    when observability is off and best-effort when on, so instrumenting
    a campaign cannot take the campaign down.
    """
