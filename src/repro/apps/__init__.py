"""MiniHPC proxy applications — analogs of the paper's benchmark suite.

Importing this package registers all apps; use
:func:`~repro.apps.registry.get_app` to build a spec.
"""

from . import amg, lammps, lulesh, matvec, mcb, minife  # noqa: F401  (register)
from .registry import APP_BUILDERS, AppSpec, app_names, get_app, register_app

#: The five paper applications (Fig. 6/7, Table 2); matvec is the Fig. 1
#: worked example and not part of the campaign suite.
PAPER_APPS = ("lulesh", "amg", "minife", "lammps", "mcb")

__all__ = [
    "APP_BUILDERS", "AppSpec", "PAPER_APPS", "app_names", "get_app",
    "register_app",
]
