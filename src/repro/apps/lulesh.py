"""lulesh_mini — shock hydrodynamics analog of LULESH.

A 1-D Lagrangian hydrodynamics code solving a Sod-like shock tube
(standing in for LULESH's Sedov blast): staggered mesh with cell-centred
energy/pressure and node-centred velocity/position, artificial viscosity,
and a fixed time step.  The domain is block-decomposed across ranks with
a cell-boundary halo exchange of (p + q) every step — LULESH's
per-iteration nearest-neighbour exchange — and, like LULESH, an internal
total-energy sanity check that calls ``mpi_abort`` when the solution
leaves physical bounds (the paper notes this check converts would-be
wrong-output runs into crashes, explaining LULESH's low WO share).
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app


def lulesh_source(n: int = 24, steps: int = 40) -> str:
    return f"""
// 1-D Lagrangian shock hydrodynamics (Sod tube), {n} cells/rank.
func main(rank: int, size: int) {{
    var n: int = {n};
    var x: float[{n + 1}];    // node positions
    var u: float[{n + 1}];    // node velocities
    var e: float[{n}];        // cell specific internal energy
    var p: float[{n}];        // cell pressure
    var q: float[{n}];        // cell artificial viscosity
    var pq: float[{n}];       // p + q scratch
    var sbuf: float[1];
    var pql: float[1];        // halo: left neighbour's boundary p+q
    var pqr: float[1];        // halo: right neighbour's boundary p+q
    var ebuf: float[1];
    var esum: float[1];

    var gamma: float = 1.4;
    var rho0: float = 1.0;
    var dx: float = 1.0 / float(size * n);
    var dt: float = 0.1 * dx;          // refined per step by the global CFL
    var m: float = rho0 * dx;          // uniform cell mass
    var half: int = size * n / 2;
    var dtbuf: float[1];
    var dtmin: float[1];

    // --- initialisation: high-energy left half, quiescent right half
    for (var i: int = 0; i < n + 1; i += 1) {{
        x[i] = float(rank * n + i) * dx;
        u[i] = 0.0;
    }}
    for (var i: int = 0; i < n; i += 1) {{
        var g: int = rank * n + i;
        if (g < half) {{
            e[i] = 2.5;
        }} else {{
            e[i] = 0.25;
        }}
        p[i] = 0.0;
        q[i] = 0.0;
    }}

    // reference total energy for the sanity check
    var e0: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        e0 += e[i] * m;
    }}
    ebuf[0] = e0;
    mpi_allreduce(&ebuf[0], &esum[0], 1, 0);
    e0 = esum[0];

    // --- time stepping
    for (var t: int = 0; t < {steps}; t += 1) {{
        // equation of state + artificial viscosity + local CFL constraint
        var dtlocal: float = 1.0;
        for (var i: int = 0; i < n; i += 1) {{
            var vol: float = x[i + 1] - x[i];
            var rho: float = m / vol;
            p[i] = (gamma - 1.0) * rho * e[i];
            var du: float = u[i + 1] - u[i];
            if (du < 0.0) {{
                q[i] = 2.0 * rho * du * du;
            }} else {{
                q[i] = 0.0;
            }}
            pq[i] = p[i] + q[i];
            var cs: float = sqrt(gamma * (gamma - 1.0) * e[i]);
            var dtc: float = 0.1 * vol / (cs + 0.0001);
            if (dtc < dtlocal) {{
                dtlocal = dtc;
            }}
        }}

        // LULESH's CalcTimeConstraints: the time step is a global MIN
        // reduction of the per-element Courant constraints, so one
        // corrupted element perturbs dt — and through it every position
        // and energy update — on every rank.
        dtbuf[0] = dtlocal;
        mpi_allreduce(&dtbuf[0], &dtmin[0], 1, 1);
        dt = dtmin[0];

        // halo exchange of boundary p+q with neighbours
        if (rank > 0) {{
            sbuf[0] = pq[0];
            mpi_send(&sbuf[0], 1, rank - 1, 1);
        }}
        if (rank < size - 1) {{
            sbuf[0] = pq[n - 1];
            mpi_send(&sbuf[0], 1, rank + 1, 2);
        }}
        if (rank < size - 1) {{
            mpi_recv(&pqr[0], 1, rank + 1, 1);
        }} else {{
            pqr[0] = pq[n - 1];   // reflective wall: zero gradient
        }}
        if (rank > 0) {{
            mpi_recv(&pql[0], 1, rank - 1, 2);
        }} else {{
            pql[0] = pq[0];
        }}

        // momentum update (interior + shared boundary nodes)
        for (var i: int = 1; i < n; i += 1) {{
            u[i] += dt * (0.0 - (pq[i] - pq[i - 1])) / m;
        }}
        if (rank > 0) {{
            u[0] += dt * (0.0 - (pq[0] - pql[0])) / m;
        }} else {{
            u[0] = 0.0;           // solid wall
        }}
        if (rank < size - 1) {{
            u[n] += dt * (0.0 - (pqr[0] - pq[n - 1])) / m;
        }} else {{
            u[n] = 0.0;           // solid wall
        }}

        // position and energy update
        for (var i: int = 0; i < n + 1; i += 1) {{
            x[i] += dt * u[i];
        }}
        for (var i: int = 0; i < n; i += 1) {{
            e[i] -= dt * pq[i] * (u[i + 1] - u[i]) / m;
        }}

        // LULESH-style internal check: total energy within bounds
        var etot: float = 0.0;
        for (var i: int = 0; i < n; i += 1) {{
            etot += e[i] * m + 0.25 * (u[i] * u[i] + u[i + 1] * u[i + 1]) * m;
        }}
        ebuf[0] = etot;
        mpi_allreduce(&ebuf[0], &esum[0], 1, 0);
        if (esum[0] > 1.15 * e0) {{
            mpi_abort(7);
        }}
        if (esum[0] < 0.85 * e0) {{
            mpi_abort(7);
        }}
        mark_iteration();
    }}

    // --- outputs: aggregate verification quantities, like LULESH's
    // final-origin-energy check — regional sums, not pointwise profiles
    emit(esum[0]);
    var psum: float = 0.0;
    var usum: float = 0.0;
    var xspan: float = x[n] - x[0];
    for (var i: int = 0; i < n; i += 1) {{
        psum += p[i];
        usum += u[i] * u[i];
    }}
    emit(psum);
    emit(usum);
    emit(xspan);
}}
"""


@register_app("lulesh")
def build(n: int = 24, steps: int = 40, nranks: int = 4) -> AppSpec:
    return AppSpec(
        name="lulesh",
        source=lulesh_source(n, steps),
        config=RunConfig(nranks=nranks),
        tolerance=0.05,
        description="LULESH analog: 1-D Lagrangian shock hydrodynamics "
                    "with per-step halo exchange and energy abort check",
        params={"n": n, "steps": steps, "nranks": nranks},
    )
