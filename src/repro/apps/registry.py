"""Application registry: the paper's benchmark suite, as MiniHPC analogs.

Each app is an :class:`AppSpec`: MiniHPC source plus the run/classify
parameters the campaign layer needs (rank count, output tolerance, sizes).
``get_app(name, **params)`` builds a spec; ``APP_BUILDERS`` lists them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.config import RunConfig


@dataclass(frozen=True)
class AppSpec:
    """One runnable benchmark application."""

    name: str
    source: str
    config: RunConfig
    #: relative tolerance for output comparison (paper uses 5 %)
    tolerance: float = 0.05
    #: absolute tolerance floor, for outputs whose golden value is ~0
    #: (e.g. converged residual/error norms)
    abs_tolerance: float = 1e-6
    #: human description + which paper app this is the analog of
    description: str = ""
    #: free-form parameters used to build the source (for reporting)
    params: Dict[str, object] = field(default_factory=dict)


APP_BUILDERS: Dict[str, Callable[..., AppSpec]] = {}


def register_app(name: str):
    """Decorator: register an AppSpec builder under ``name``."""

    def deco(fn: Callable[..., AppSpec]):
        APP_BUILDERS[name] = fn
        return fn

    return deco


def get_app(name: str, **params) -> AppSpec:
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(APP_BUILDERS))
        raise KeyError(f"unknown app {name!r}; known apps: {known}") from None
    return builder(**params)


def app_names() -> List[str]:
    return sorted(APP_BUILDERS)
