"""amg_mini — algebraic multigrid analog of AMG2013.

Three clearly separated phases, like AMG2013's profile in Fig. 7b:

1. **Init** — assemble the fine-level 1-D Laplace system (rows
   distributed across ranks).
2. **Setup** — build the coarse-level operator by the Galerkin product
   R A P with linear interpolation, entry-by-entry (the analog of AMG's
   setup sweep).
3. **Solve** — two-grid V-cycles: weighted-Jacobi smoothing on the fine
   level with halo exchange, restriction of the residual (with a halo
   exchange of boundary residuals), a distributed direct coarse solve
   (residual gathered on rank 0, Thomas algorithm, correction slices
   scattered back), prolongation + correction, repeated until the
   residual norm drops below tolerance or a cycle cap.

mark_iteration() counts solver V-cycles only, so a fault that delays
convergence shows up as a PEX outcome.
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app


def amg_source(n: int = 16, max_cycles: int = 60) -> str:
    nc = n // 2
    # Coarse full-system arrays live on rank 0; sized for up to 8 ranks.
    ncg_cap = nc * 8
    return f"""
// Two-grid multigrid for 1-D Laplace, {n} fine rows/rank.
func main(rank: int, size: int) {{
    var n: int = {n};
    var nc: int = {nc};
    var nglob: int = n * size;
    var ncglob: int = nc * size;

    // fine level (tridiagonal rows)
    var fd: float[{n}];
    var fl: float[{n}];
    var fr: float[{n}];
    var b: float[{n}];
    var u: float[{n}];
    var res: float[{n}];
    var tmp: float[{n}];
    // coarse level: operator rows owned locally, full system assembled
    // only on rank 0 for the direct solve
    var cd: float[{ncg_cap}];
    var cl: float[{ncg_cap}];
    var cr: float[{ncg_cap}];
    var cres_local: float[{nc}];
    var cres: float[{ncg_cap}];
    var cu: float[{ncg_cap}];
    var cp: float[{ncg_cap}];   // Thomas scratch
    var cq: float[{ncg_cap}];
    var cslice: float[{nc + 1}];  // own coarse correction + left ghost
    var hl: float[1];
    var hr: float[1];
    var rhl: float[1];
    var rhr: float[1];
    var sbuf: float[1];
    var dot: float[1];
    var dots: float[1];

    var pi: float = 3.14159265358979;
    var h: float = 1.0 / float(nglob + 1);

    // ---------------- phase 1: init (fine assembly) ----------------
    for (var i: int = 0; i < n; i += 1) {{
        var k: float = 1.0 / (h * h);
        fd[i] = 2.0 * k;
        fl[i] = 0.0 - k;
        fr[i] = 0.0 - k;
        var xg: float = float(rank * n + i + 1) * h;
        b[i] = pi * pi * sin(pi * xg) + 2.0;
        u[i] = 0.0;
    }}

    // ---------------- phase 2: setup (Galerkin coarse operator) -----
    // With linear interpolation P and full-weighting restriction R, the
    // Galerkin product R A P of the 1-D Laplacian is the 2h Laplacian.
    // Accumulate it entry-by-entry like AMG's setup sweep.
    for (var j: int = 0; j < ncglob; j += 1) {{
        var k: float = 1.0 / (h * h);
        var acc_d: float = 0.0;
        var acc_o: float = 0.0;
        // R row weights (1/4, 1/2, 1/4) times A columns times P weights
        acc_d += 0.25 * (2.0 * k) * 0.5;
        acc_d += 0.5 * (2.0 * k) * 1.0;
        acc_d += 0.25 * (2.0 * k) * 0.5;
        acc_d += 0.25 * (0.0 - k) * 1.0;
        acc_d += 0.5 * (0.0 - k) * 0.5;
        acc_d += 0.5 * (0.0 - k) * 0.5;
        acc_d += 0.25 * (0.0 - k) * 1.0;
        // off-diagonal: R weight 1/2 against (A P)_centre = -k/2; the
        // flanking full-weighting taps hit zero columns of A P.
        acc_o += 0.5 * ((0.0 - k) * 0.5);
        acc_o += 0.25 * 0.0;
        acc_o += 0.25 * 0.0;
        cd[j] = acc_d;
        cl[j] = acc_o;
        cr[j] = acc_o;
    }}

    // ---------------- phase 3: solve (two-grid V-cycles) ------------
    var omega: float = 0.6666666;
    var rn0: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        rn0 += b[i] * b[i];
    }}
    dot[0] = rn0;
    mpi_allreduce(&dot[0], &dots[0], 1, 0);
    rn0 = dots[0];
    var rn: float = rn0;
    var cycles: int = 0;

    while (rn > 0.000000000001 * rn0 && cycles < {max_cycles}) {{
        // -- pre-smoothing: 2 weighted-Jacobi sweeps with halo exchange
        for (var s: int = 0; s < 2; s += 1) {{
            if (rank > 0) {{
                sbuf[0] = u[0];
                mpi_send(&sbuf[0], 1, rank - 1, 1);
            }}
            if (rank < size - 1) {{
                sbuf[0] = u[n - 1];
                mpi_send(&sbuf[0], 1, rank + 1, 2);
            }}
            if (rank < size - 1) {{
                mpi_recv(&hr[0], 1, rank + 1, 1);
            }} else {{
                hr[0] = 0.0;
            }}
            if (rank > 0) {{
                mpi_recv(&hl[0], 1, rank - 1, 2);
            }} else {{
                hl[0] = 0.0;
            }}
            for (var i: int = 0; i < n; i += 1) {{
                var left: float = hl[0];
                var right: float = hr[0];
                if (i > 0) {{
                    left = u[i - 1];
                }}
                if (i < n - 1) {{
                    right = u[i + 1];
                }}
                var ax: float = fl[i] * left + fr[i] * right;
                tmp[i] = (1.0 - omega) * u[i] + omega * (b[i] - ax) / fd[i];
            }}
            for (var i: int = 0; i < n; i += 1) {{
                u[i] = tmp[i];
            }}
        }}

        // -- residual with fresh halo
        if (rank > 0) {{
            sbuf[0] = u[0];
            mpi_send(&sbuf[0], 1, rank - 1, 1);
        }}
        if (rank < size - 1) {{
            sbuf[0] = u[n - 1];
            mpi_send(&sbuf[0], 1, rank + 1, 2);
        }}
        if (rank < size - 1) {{
            mpi_recv(&hr[0], 1, rank + 1, 1);
        }} else {{
            hr[0] = 0.0;
        }}
        if (rank > 0) {{
            mpi_recv(&hl[0], 1, rank - 1, 2);
        }} else {{
            hl[0] = 0.0;
        }}
        for (var i: int = 0; i < n; i += 1) {{
            var left: float = hl[0];
            var right: float = hr[0];
            if (i > 0) {{
                left = u[i - 1];
            }}
            if (i < n - 1) {{
                right = u[i + 1];
            }}
            res[i] = b[i] - (fd[i] * u[i] + fl[i] * left + fr[i] * right);
        }}

        // -- exchange boundary residuals for full-weighting restriction
        if (rank > 0) {{
            sbuf[0] = res[0];
            mpi_send(&sbuf[0], 1, rank - 1, 1);
        }}
        if (rank < size - 1) {{
            mpi_recv(&rhr[0], 1, rank + 1, 1);
        }} else {{
            rhr[0] = 0.0;
        }}

        // -- restrict (full weighting) the local residual slice
        for (var j: int = 0; j < nc; j += 1) {{
            var i: int = 2 * j + 1;
            var right: float = rhr[0];
            if (i + 1 < n) {{
                right = res[i + 1];
            }}
            cres_local[j] = 0.25 * res[i - 1] + 0.5 * res[i] + 0.25 * right;
        }}

        // -- gather the coarse residual on rank 0, solve directly with
        // the Thomas algorithm, and scatter each rank its correction
        // slice plus one left ghost value (distributed coarse solve)
        if (rank > 0) {{
            mpi_send(&cres_local[0], nc, 0, 30);
            mpi_recv(&cslice[0], nc + 1, 0, 31);
        }} else {{
            for (var j: int = 0; j < nc; j += 1) {{
                cres[j] = cres_local[j];
            }}
            for (var r: int = 1; r < size; r += 1) {{
                mpi_recv(&cres[r * nc], nc, r, 30);
            }}
            cp[0] = cr[0] / cd[0];
            cq[0] = cres[0] / cd[0];
            for (var j: int = 1; j < ncglob; j += 1) {{
                var denom: float = cd[j] - cl[j] * cp[j - 1];
                cp[j] = cr[j] / denom;
                cq[j] = (cres[j] - cl[j] * cq[j - 1]) / denom;
            }}
            cu[ncglob - 1] = cq[ncglob - 1];
            for (var j: int = ncglob - 2; j >= 0; j -= 1) {{
                cu[j] = cq[j] - cp[j] * cu[j + 1];
            }}
            for (var r: int = 1; r < size; r += 1) {{
                mpi_send(&cu[r * nc - 1], nc + 1, r, 31);
            }}
            cslice[0] = 0.0;
            for (var j: int = 0; j < nc; j += 1) {{
                cslice[j + 1] = cu[j];
            }}
        }}

        // -- prolongate own slice and correct
        for (var j: int = 0; j < nc; j += 1) {{
            var i: int = 2 * j + 1;
            u[i] += cslice[j + 1];
            u[i - 1] += 0.5 * (cslice[j] + cslice[j + 1]);
        }}

        // -- convergence check on the (pre-correction) residual
        var rsum: float = 0.0;
        for (var i: int = 0; i < n; i += 1) {{
            rsum += res[i] * res[i];
        }}
        dot[0] = rsum;
        mpi_allreduce(&dot[0], &dots[0], 1, 0);
        rn = dots[0];
        cycles += 1;
        mark_iteration();
    }}

    // outputs: discretisation error against the analytic solution
    // u = sin(pi x) + x(1-x), plus sampled solution values
    var err: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        var xg: float = float(rank * n + i + 1) * h;
        var diff: float = u[i] - (sin(pi * xg) + xg * (1.0 - xg));
        err += diff * diff;
    }}
    dot[0] = err;
    mpi_allreduce(&dot[0], &dots[0], 1, 0);
    emit(sqrt(dots[0] * h));
    for (var i: int = 0; i < n; i += 4) {{
        emit(u[i]);
    }}
}}
"""


@register_app("amg")
def build(n: int = 16, max_cycles: int = 60, nranks: int = 4) -> AppSpec:
    if nranks > 8:
        raise ValueError("amg replicates the coarse grid for at most 8 ranks")
    return AppSpec(
        name="amg",
        source=amg_source(n, max_cycles),
        config=RunConfig(nranks=nranks),
        tolerance=0.05,
        description="AMG2013 analog: two-grid multigrid with Galerkin "
                    "setup phase and distributed direct coarse solve",
        params={"n": n, "max_cycles": max_cycles, "nranks": nranks},
    )
