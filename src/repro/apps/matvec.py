"""Iterative Matrix-Vector multiplication — the paper's Fig. 1 example.

A constant 4x4 integer matrix A and input vector x0 = [1 2 2 3]; each
iteration computes b = A x and feeds x = b into the next.  The paper
walks through one bit flip changing A[3][3] from 6 to 2 and shows the
contamination reaching 25 % of the memory state after two iterations and
37.5 % after three; the Fig. 1 benchmark reproduces those exact numbers.

Matrix entries are written through a register (``v = 6; A[15] = v;``) so
that a ``mem``-kind injection site exists on each initialising store —
flipping bit 1 of the stored register value 6 yields 4... bit 2 yields 2,
the paper's example.
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app

#: The exact matrix of paper Fig. 1, row-major.
MATRIX = [
    1, 2, 3, 4,
    4, 2, 3, 1,
    2, 4, 3, 3,
    1, 1, 2, 6,
]
X0 = [1, 2, 2, 3]


def matvec_source(iters: int = 3) -> str:
    init_a = "\n    ".join(
        f"v = {val}; A[{i}] = v;" for i, val in enumerate(MATRIX)
    )
    init_x = "\n    ".join(f"v = {val}; x[{i}] = v;" for i, val in enumerate(X0))
    return f"""
// Fig. 1: iterative matvec, b_i = A x_i, x_{{i+1}} = b_i
func main(rank: int, size: int) {{
    var A: int[16];
    var x: int[4];
    var b: int[4];
    var v: int = 0;
    {init_a}
    {init_x}
    for (var it: int = 0; it < {iters}; it += 1) {{
        for (var i: int = 0; i < 4; i += 1) {{
            var s: int = 0;
            for (var j: int = 0; j < 4; j += 1) {{
                s += A[i * 4 + j] * x[j];
            }}
            b[i] = s;
        }}
        mark_iteration();   // iteration boundary: b computed, x not yet fed back
        for (var i: int = 0; i < 4; i += 1) {{
            x[i] = b[i];
        }}
    }}
    for (var i: int = 0; i < 4; i += 1) {{
        emiti(b[i]);
    }}
}}
"""


@register_app("matvec")
def build(iters: int = 3) -> AppSpec:
    return AppSpec(
        name="matvec",
        source=matvec_source(iters),
        config=RunConfig(
            nranks=1,
            quantum=16,  # fine-grained sampling: the program is tiny
            inject_kinds=("arith", "mem"),
        ),
        tolerance=0.0,  # integer outputs must match exactly
        abs_tolerance=0.0,
        description="Fig. 1 worked example: iterative integer matvec",
        params={"iters": iters},
    )
