"""mcb_mini — Monte Carlo transport analog of MCB.

1-D particle transport with domain decomposition: each rank owns a slab
of cells and a population of particles that stream with constant speed,
scatter (direction flip) and are absorbed (weight deposited into a cell
tally) with fixed probabilities drawn from the deterministic per-rank
RNG.  Particles crossing a domain boundary are packed into a buffer and
shipped to the neighbour rank — MCB's "when particles hit the boundary of
a domain, they are buffered and then sent ... to the processor simulating
the domain on the other side" — so faults piggyback on particle payloads
across ranks.  Global domain ends are reflective.

Every surviving particle touches a tally cell each step, so contamination
fans out across the tally and particle arrays quickly — the highest FPS
of the suite (Table 2), a property the paper attributes to the Monte
Carlo method itself.
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app


def mcb_source(n: int = 16, particles: int = 32, steps: int = 30) -> str:
    cap = particles * 4
    buf = particles * 3  # 3 words per packed particle
    return f"""
// 1-D Monte Carlo particle transport, {n} cells and {particles}
// source particles per rank.
func main(rank: int, size: int) {{
    var n: int = {n};
    var cap: int = {cap};
    var pos: float[{cap}];
    var dir: float[{cap}];
    var wgt: float[{cap}];
    var tally: float[{n}];
    var edep: float[{n}];   // absorbed-energy census tally
    var sendl: float[{buf}];
    var sendr: float[{buf}];
    var rbuf: float[{buf}];
    var scnt: int[1];
    var rcnt: int[1];
    var wbuf: float[1];
    var wsum: float[1];

    var xlo: float = float(rank * n);
    var xhi: float = float((rank + 1) * n);
    var xend: float = float(size * n);
    var step: float = 0.9;
    var pscat: float = 0.3;
    var pabs: float = 0.08;

    for (var i: int = 0; i < n; i += 1) {{
        tally[i] = 0.0;
        edep[i] = 0.0;
    }}
    var nlocal: int = {particles};
    for (var i: int = 0; i < nlocal; i += 1) {{
        pos[i] = xlo + (float(i) + 0.5) * float(n) / float(nlocal);
        if (rand() < 0.5) {{
            dir[i] = 1.0;
        }} else {{
            dir[i] = 0.0 - 1.0;
        }}
        wgt[i] = 1.0;
    }}

    // initial global source weight, the population-control target
    var wloc: float = 0.0;
    for (var i: int = 0; i < nlocal; i += 1) {{
        wloc += wgt[i];
    }}
    wbuf[0] = wloc;
    mpi_allreduce(&wbuf[0], &wsum[0], 1, 0);
    var wtarget: float = wsum[0];

    for (var t: int = 0; t < {steps}; t += 1) {{
        var cl: int = 0;    // particles packed for the left neighbour
        var cr: int = 0;
        var i: int = 0;
        while (i < nlocal) {{
            pos[i] += dir[i] * step;
            // reflective global walls
            if (pos[i] < 0.0) {{
                pos[i] = 0.0 - pos[i];
                dir[i] = 1.0;
            }}
            if (pos[i] >= xend) {{
                pos[i] = 2.0 * xend - pos[i] - 0.0001;
                dir[i] = 0.0 - 1.0;
            }}
            if (pos[i] < xlo) {{
                // pack for the left neighbour, backfill from the end
                sendl[3 * cl] = pos[i];
                sendl[3 * cl + 1] = dir[i];
                sendl[3 * cl + 2] = wgt[i];
                cl += 1;
                nlocal -= 1;
                pos[i] = pos[nlocal];
                dir[i] = dir[nlocal];
                wgt[i] = wgt[nlocal];
            }} else {{
                if (pos[i] >= xhi) {{
                    sendr[3 * cr] = pos[i];
                    sendr[3 * cr + 1] = dir[i];
                    sendr[3 * cr + 2] = wgt[i];
                    cr += 1;
                    nlocal -= 1;
                    pos[i] = pos[nlocal];
                    dir[i] = dir[nlocal];
                    wgt[i] = wgt[nlocal];
                }} else {{
                    var cell: int = int(pos[i] - xlo);
                    tally[cell] += 0.05 * wgt[i];   // path-length flux tally
                    if (rand() < pscat) {{
                        dir[i] = 0.0 - dir[i];       // isotropic scatter
                    }}
                    if (rand() < pabs) {{
                        tally[cell] += wgt[i];       // absorption
                        edep[cell] += wgt[i];        // energy-balance census
                        nlocal -= 1;
                        pos[i] = pos[nlocal];
                        dir[i] = dir[nlocal];
                        wgt[i] = wgt[nlocal];
                    }} else {{
                        i += 1;
                    }}
                }}
            }}
        }}

        // ship boundary-crossers: count first, then payload
        if (rank > 0) {{
            scnt[0] = cl;
            mpi_send(&scnt[0], 1, rank - 1, 10);
            mpi_send(&sendl[0], 3 * cl, rank - 1, 11);
        }}
        if (rank < size - 1) {{
            scnt[0] = cr;
            mpi_send(&scnt[0], 1, rank + 1, 20);
            mpi_send(&sendr[0], 3 * cr, rank + 1, 21);
        }}
        if (rank < size - 1) {{
            mpi_recv(&rcnt[0], 1, rank + 1, 10);
            mpi_recv(&rbuf[0], {buf}, rank + 1, 11);
            if (3 * rcnt[0] > {buf}) {{
                mpi_abort(9);    // MCB sanity check on the buffer header
            }}
            for (var k: int = 0; k < rcnt[0]; k += 1) {{
                if (nlocal < cap) {{
                    pos[nlocal] = rbuf[3 * k];
                    dir[nlocal] = rbuf[3 * k + 1];
                    wgt[nlocal] = rbuf[3 * k + 2];
                    nlocal += 1;
                }}
            }}
        }}
        if (rank > 0) {{
            mpi_recv(&rcnt[0], 1, rank - 1, 20);
            mpi_recv(&rbuf[0], {buf}, rank - 1, 21);
            if (3 * rcnt[0] > {buf}) {{
                mpi_abort(9);
            }}
            for (var k: int = 0; k < rcnt[0]; k += 1) {{
                if (nlocal < cap) {{
                    pos[nlocal] = rbuf[3 * k];
                    dir[nlocal] = rbuf[3 * k + 1];
                    wgt[nlocal] = rbuf[3 * k + 2];
                    nlocal += 1;
                }}
            }}
        }}
        // population control: renormalise weights against the global
        // energy-balance census (in-flight weight + deposited energy), as
        // Monte Carlo criticality/IMC codes do every cycle — corruption
        // anywhere in the particle state or the deposition tallies taints
        // the global factor and, through it, the entire population
        wloc = 0.0;
        for (var i: int = 0; i < nlocal; i += 1) {{
            wloc += wgt[i];
        }}
        for (var i: int = 0; i < n; i += 1) {{
            wloc += edep[i];
        }}
        wbuf[0] = wloc;
        mpi_allreduce(&wbuf[0], &wsum[0], 1, 0);
        var norm: float = 1.0 + 0.02 * (wtarget - wsum[0]) / wtarget;
        for (var i: int = 0; i < nlocal; i += 1) {{
            wgt[i] = wgt[i] * norm;
        }}
        mark_iteration();
    }}

    // outputs: the local flux tally and the surviving population weight
    var wout: float = 0.0;
    for (var i: int = 0; i < nlocal; i += 1) {{
        wout += wgt[i];
    }}
    emit(wout);
    for (var i: int = 0; i < n; i += 2) {{
        emit(tally[i]);
    }}
}}
"""


@register_app("mcb")
def build(n: int = 16, particles: int = 32, steps: int = 30,
          nranks: int = 4) -> AppSpec:
    return AppSpec(
        name="mcb",
        source=mcb_source(n, particles, steps),
        config=RunConfig(nranks=nranks),
        tolerance=0.05,
        description="MCB analog: 1-D Monte Carlo particle transport with "
                    "buffered cross-domain particle exchange",
        params={"n": n, "particles": particles, "steps": steps,
                "nranks": nranks},
    )
