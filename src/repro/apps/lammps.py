"""lammps_mini — molecular dynamics analog of LAMMPS.

2-D Lennard-Jones particles integrated with velocity Verlet in a strip
decomposition along x: each step, every rank ships its particle positions
to both neighbour ranks and computes forces against local + ghost
particles within a cutoff (an EAM-metal stand-in at a tractable scale).
The trajectory is chaotic, so even a tiny surviving perturbation shifts
final positions/energies beyond the 5 % output tolerance — reproducing
LAMMPS' position as the most output-vulnerable app in Fig. 6 while having
one of the *lowest* FPS factors in Table 2 (each particle couples only to
nearby particles, so contamination spreads slowly per cycle).

A static lookup table is initialised and never read afterwards: faults
landing in its initialisation contaminate memory that never propagates —
the paper's flat lower profile in Fig. 7d.
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app


def lammps_source(n: int = 8, steps: int = 60) -> str:
    # Particles per rank n; strip of width `w` per rank, height `h`.
    return f"""
// 2-D Lennard-Jones molecular dynamics, {n} particles/rank.
func main(rank: int, size: int) {{
    var n: int = {n};
    var px: float[{n}];
    var py: float[{n}];
    var vx: float[{n}];
    var vy: float[{n}];
    var fx: float[{n}];
    var fy: float[{n}];
    var gxl: float[{n}];   // ghosts from left neighbour
    var gyl: float[{n}];
    var gxr: float[{n}];   // ghosts from right neighbour
    var gyr: float[{n}];
    var table: float[48];  // static potential table: built, never used
    var dens: float[16];   // density histogram (cell-list analog)
    var ebuf: float[2];
    var esum: float[2];

    var spacing: float = 1.12;
    var w: float = spacing * 4.0;       // strip width: 4 columns along x
    var x0: float = float(rank) * w;
    var dt: float = 0.005;
    var rc2: float = 25.0;      // cutoff^2 = 5^2 (long-range, EAM-like)

    for (var i: int = 0; i < 16; i += 1) {{
        dens[i] = 0.0;
    }}

    // static potential lookup table (never read during the run)
    for (var i: int = 0; i < 48; i += 1) {{
        var r: float = 0.5 + 0.05 * float(i);
        var ir6: float = 1.0 / (r * r * r * r * r * r);
        table[i] = 4.0 * (ir6 * ir6 - ir6);
    }}

    // initial lattice (5 columns) + small deterministic velocity noise
    for (var i: int = 0; i < n; i += 1) {{
        var col: int = i % 4;
        var row: int = i / 4;
        px[i] = x0 + 0.28 + spacing * float(col);
        py[i] = 0.56 + spacing * float(row);
        vx[i] = 1.6 * (rand() - 0.5);
        vy[i] = 1.6 * (rand() - 0.5);
    }}

    var pot: float = 0.0;
    for (var t: int = 0; t < {steps}; t += 1) {{
        // ship local positions to both neighbours (ghost exchange)
        if (rank > 0) {{
            mpi_send(&px[0], n, rank - 1, 1);
            mpi_send(&py[0], n, rank - 1, 2);
        }}
        if (rank < size - 1) {{
            mpi_send(&px[0], n, rank + 1, 3);
            mpi_send(&py[0], n, rank + 1, 4);
        }}
        var has_l: int = 0;
        var has_r: int = 0;
        if (rank < size - 1) {{
            mpi_recv(&gxr[0], n, rank + 1, 1);
            mpi_recv(&gyr[0], n, rank + 1, 2);
            has_r = 1;
        }}
        if (rank > 0) {{
            mpi_recv(&gxl[0], n, rank - 1, 3);
            mpi_recv(&gyl[0], n, rank - 1, 4);
            has_l = 1;
        }}

        // forces: local pairs + ghosts within cutoff
        pot = 0.0;
        for (var i: int = 0; i < n; i += 1) {{
            fx[i] = 0.0;
            fy[i] = 0.0;
        }}
        for (var i: int = 0; i < n; i += 1) {{
            for (var j: int = i + 1; j < n; j += 1) {{
                var dx: float = px[i] - px[j];
                var dy: float = py[i] - py[j];
                var r2: float = dx * dx + dy * dy;
                if (r2 < rc2) {{
                    var ir2: float = 1.0 / r2;
                    var ir6: float = ir2 * ir2 * ir2;
                    var ff: float = 24.0 * ir6 * (2.0 * ir6 - 1.0) * ir2;
                    fx[i] += ff * dx;
                    fy[i] += ff * dy;
                    fx[j] -= ff * dx;
                    fy[j] -= ff * dy;
                    pot += 4.0 * (ir6 * ir6 - ir6);
                }}
            }}
            if (has_l == 1) {{
                for (var j: int = 0; j < n; j += 1) {{
                    var dx: float = px[i] - gxl[j];
                    var dy: float = py[i] - gyl[j];
                    var r2: float = dx * dx + dy * dy;
                    if (r2 < rc2) {{
                        var ir2: float = 1.0 / r2;
                        var ir6: float = ir2 * ir2 * ir2;
                        var ff: float = 24.0 * ir6 * (2.0 * ir6 - 1.0) * ir2;
                        fx[i] += ff * dx;
                        fy[i] += ff * dy;
                    }}
                }}
            }}
            if (has_r == 1) {{
                for (var j: int = 0; j < n; j += 1) {{
                    var dx: float = px[i] - gxr[j];
                    var dy: float = py[i] - gyr[j];
                    var r2: float = dx * dx + dy * dy;
                    if (r2 < rc2) {{
                        var ir2: float = 1.0 / r2;
                        var ir6: float = ir2 * ir2 * ir2;
                        var ff: float = 24.0 * ir6 * (2.0 * ir6 - 1.0) * ir2;
                        fx[i] += ff * dx;
                        fy[i] += ff * dy;
                    }}
                }}
            }}
        }}

        // velocity Verlet kick + drift (single-kick leapfrog variant)
        for (var i: int = 0; i < n; i += 1) {{
            vx[i] += dt * fx[i];
            vy[i] += dt * fy[i];
            px[i] += dt * vx[i];
            py[i] += dt * vy[i];
        }}

        // density histogram via position binning — the cell-list style
        // integer indexing real MD codes do every reneighbouring step
        // (a corrupted position or bin index segfaults, not clamps)
        for (var i: int = 0; i < n; i += 1) {{
            var c: int = int((px[i] - x0 + 2.0) / 0.6);
            dens[c] += 1.0;
        }}
        mark_iteration();
    }}

    // outputs: reduced energies + sampled positions
    var kin: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        kin += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i]);
    }}
    ebuf[0] = kin;
    ebuf[1] = pot;
    mpi_allreduce(&ebuf[0], &esum[0], 2, 0);
    emit(esum[0]);
    emit(esum[1]);
    for (var i: int = 0; i < n; i += 3) {{
        emit(px[i]);
        emit(py[i]);
    }}
    for (var i: int = 0; i < 16; i += 4) {{
        emit(dens[i]);
    }}
}}
"""


@register_app("lammps")
def build(n: int = 8, steps: int = 60, nranks: int = 4) -> AppSpec:
    return AppSpec(
        name="lammps",
        source=lammps_source(n, steps),
        config=RunConfig(nranks=nranks),
        # MD trajectories are pointwise chaotic: the paper's real LAMMPS
        # (32k atoms, 100 steps, much faster dynamics) pushes any surviving
        # perturbation past 5 % well within the run.  This analog's horizon
        # is ~0.3 LJ time units, far below the Lyapunov amplification the
        # real code gets, so the output criterion is a trajectory digest:
        # any deviation beyond float noise means a corrupted trajectory.
        tolerance=1e-7,
        abs_tolerance=1e-10,
        description="LAMMPS analog: 2-D Lennard-Jones MD with ghost "
                    "exchange; chaotic trajectory, unused static table",
        params={"n": n, "steps": steps, "nranks": nranks},
    )
