"""minife_mini — implicit finite-element analog of miniFE.

Assembles a 1-D Poisson system element-by-element (the FEM scatter that
dominates miniFE's assembly phase), sanity-checks the assembled rows
(miniFE's internal check — a contaminated matrix aborts before the solve,
the left-most WO case of Fig. 7c), then solves with an unpreconditioned
conjugate-gradient iteration exactly as miniFE does: distributed matvec
with halo exchange plus two allreduce dot products per iteration.
Finally the computed solution is compared against the analytic steady
state (sin pi x), mirroring miniFE's verification step.

CG is self-correcting: a transient fault usually delays convergence
rather than destroying it, producing the paper's PEX outcomes (correct
answer, more iterations).
"""

from __future__ import annotations

from ..core.config import RunConfig
from .registry import AppSpec, register_app


def minife_source(n: int = 16, max_iters: int = 240) -> str:
    return f"""
// 1-D Poisson FEM assembly + unpreconditioned CG solve, {n} rows/rank.
func main(rank: int, size: int) {{
    var n: int = {n};
    var diag: float[{n}];
    var offl: float[{n}];
    var offr: float[{n}];
    var rhs: float[{n}];
    var u: float[{n}];       // solution
    var r: float[{n}];       // residual
    var d: float[{n}];       // search direction
    var w: float[{n}];       // A d
    var hl: float[1];
    var hr: float[1];
    var sbuf: float[1];
    var dot: float[2];
    var dots: float[2];

    var pi: float = 3.14159265358979;
    var nglob: int = n * size;
    var h: float = 1.0 / float(nglob + 1);

    // --- assembly: element loop scattering into the row arrays
    for (var i: int = 0; i < n; i += 1) {{
        diag[i] = 0.0;
        offl[i] = 0.0;
        offr[i] = 0.0;
        rhs[i] = 0.0;
        u[i] = 0.0;
    }}
    // element e couples rows e-1 and e (local numbering, halo elements
    // contribute only their local half)
    for (var e: int = 0; e <= n; e += 1) {{
        var k: float = 1.0 / h;        // element stiffness 1/h * [1 -1; -1 1]
        if (e > 0) {{
            diag[e - 1] += k;
        }}
        if (e < n) {{
            diag[e] += k;
        }}
        if (e > 0 && e < n) {{
            offr[e - 1] -= k;
            offl[e] -= k;
        }}
    }}
    // boundary-coupling entries between ranks
    if (rank > 0) {{
        offl[0] -= 1.0 / h;
    }}
    if (rank < size - 1) {{
        offr[n - 1] -= 1.0 / h;
    }}
    // Load vector: f = 2 (steady-state conduction with uniform source),
    // trapezoidal lumping.  The exact solution u = x(1-x) is NOT an
    // eigenvector of the discrete Laplacian, so CG needs a full spectrum
    // of iterations (a pure sine RHS would converge in one step).
    for (var i: int = 0; i < n; i += 1) {{
        rhs[i] = 2.0 * h;
    }}

    // --- miniFE-style internal check on the assembled system: interior
    // row sums of the stiffness matrix must vanish.
    for (var i: int = 0; i < n; i += 1) {{
        var g: int = rank * n + i;
        if (g > 0 && g < nglob - 1) {{
            var s: float = diag[i] + offl[i] + offr[i];
            if (fabs(s) > 0.000001 * diag[i]) {{
                mpi_abort(3);
            }}
        }}
    }}

    // --- CG solve
    for (var i: int = 0; i < n; i += 1) {{
        r[i] = rhs[i];
        d[i] = r[i];
    }}
    var rr: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        rr += r[i] * r[i];
    }}
    dot[0] = rr;
    mpi_allreduce(&dot[0], &dots[0], 1, 0);
    rr = dots[0];
    var rr0: float = rr;
    var tol2: float = 0.0000000000000001 * rr0;   // (1e-8)^2 relative
    var iters: int = 0;

    while (rr > tol2 && iters < {max_iters}) {{
        // halo exchange of direction-vector boundary values
        if (rank > 0) {{
            sbuf[0] = d[0];
            mpi_send(&sbuf[0], 1, rank - 1, 1);
        }}
        if (rank < size - 1) {{
            sbuf[0] = d[n - 1];
            mpi_send(&sbuf[0], 1, rank + 1, 2);
        }}
        if (rank < size - 1) {{
            mpi_recv(&hr[0], 1, rank + 1, 1);
        }} else {{
            hr[0] = 0.0;       // Dirichlet boundary
        }}
        if (rank > 0) {{
            mpi_recv(&hl[0], 1, rank - 1, 2);
        }} else {{
            hl[0] = 0.0;
        }}

        // w = A d (tridiagonal matvec with halo values)
        for (var i: int = 0; i < n; i += 1) {{
            var left: float = hl[0];
            var right: float = hr[0];
            if (i > 0) {{
                left = d[i - 1];
            }}
            if (i < n - 1) {{
                right = d[i + 1];
            }}
            w[i] = diag[i] * d[i] + offl[i] * left + offr[i] * right;
        }}

        var dw: float = 0.0;
        for (var i: int = 0; i < n; i += 1) {{
            dw += d[i] * w[i];
        }}
        dot[0] = dw;
        mpi_allreduce(&dot[0], &dots[0], 1, 0);
        dw = dots[0];
        if (fabs(dw) < 0.000000000000000000001) {{
            mpi_abort(4);      // breakdown: direction annihilated
        }}
        var alpha: float = rr / dw;
        for (var i: int = 0; i < n; i += 1) {{
            u[i] += alpha * d[i];
            r[i] -= alpha * w[i];
        }}
        var rrn: float = 0.0;
        for (var i: int = 0; i < n; i += 1) {{
            rrn += r[i] * r[i];
        }}
        dot[0] = rrn;
        mpi_allreduce(&dot[0], &dots[0], 1, 0);
        rrn = dots[0];
        var beta: float = rrn / rr;
        for (var i: int = 0; i < n; i += 1) {{
            d[i] = r[i] + beta * d[i];
        }}
        rr = rrn;
        iters += 1;
        mark_iteration();
    }}

    // --- verification against the analytic solution u = x(1-x)
    var err: float = 0.0;
    for (var i: int = 0; i < n; i += 1) {{
        var xg: float = float(rank * n + i + 1) * h;
        var diff: float = u[i] - xg * (1.0 - xg);
        err += diff * diff;
    }}
    dot[0] = err;
    mpi_allreduce(&dot[0], &dots[0], 1, 0);
    // NOTE: the iteration count is reported via mark_iteration(), not
    // emitted: a PEX run (correct answer, more iterations) must compare
    // output-equal to the golden run.
    emit(sqrt(dots[0] * h));
    for (var i: int = 0; i < n; i += 4) {{
        emit(u[i]);
    }}
}}
"""


@register_app("minife")
def build(n: int = 16, max_iters: int = 240, nranks: int = 4) -> AppSpec:
    return AppSpec(
        name="minife",
        source=minife_source(n, max_iters),
        config=RunConfig(nranks=nranks),
        tolerance=0.05,
        description="miniFE analog: 1-D Poisson FEM assembly + "
                    "unpreconditioned CG with analytic verification",
        params={"n": n, "max_iters": max_iters, "nranks": nranks},
    )
