"""Campaign persistence: JSON summaries and CSV trial tables.

Campaigns are expensive (the paper ran 5,000 trials per application on a
1,024-core cluster); these helpers save results for later analysis and
reload them without re-running anything.  The JSON form round-trips a
full :class:`~repro.inject.campaign.CampaignResult`, including the
per-trial CML(t) series when retained.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..inject.campaign import CampaignResult, TrialResult
from ..inject.health import CampaignHealth
from ..vm.machine import FaultSpec

_FORMAT_VERSION = 1


def _trial_to_dict(t: TrialResult) -> dict:
    d = {
        "outcome": t.outcome,
        "trap_kind": t.trap_kind,
        "faults": [
            {"rank": f.rank, "occurrence": f.occurrence, "bit": f.bit,
             "operand": f.operand}
            for f in t.faults
        ],
        "injected_cycles": list(t.injected_cycles),
        "injected_occurrences": list(t.injected_occurrences),
        "injected_sites": list(t.injected_sites),
        "iterations": t.iterations,
        "cycles": t.cycles,
        "final_cml": t.final_cml,
        "peak_cml": t.peak_cml,
        "peak_cml_fraction": t.peak_cml_fraction,
        "ever_contaminated": t.ever_contaminated,
        "ranks_contaminated": t.ranks_contaminated,
        "first_contamination": [
            c if c is not None else None for c in t.first_contamination
        ],
    }
    if t.failure_kind is not None:
        d["failure_kind"] = t.failure_kind
        d["failure_detail"] = t.failure_detail
    if t.retries:
        d["retries"] = t.retries
    if t.pruned_at_cycle is not None:
        d["pruned_at_cycle"] = t.pruned_at_cycle
    if t.forked_at_cycle is not None:
        d["forked_at_cycle"] = t.forked_at_cycle
    if t.pages_copied is not None:
        d["pages_copied"] = t.pages_copied
    if t.lane is not None:
        d["lane"] = t.lane
    if t.stage_timings:
        d["stage_timings"] = dict(t.stage_timings)
    if t.times is not None:
        d["series"] = {
            "times": t.times.tolist(),
            "cml": t.cml.tolist(),
            "live": t.live.tolist() if t.live is not None else None,
            "ranks": (t.ranks_series.tolist()
                      if t.ranks_series is not None else None),
        }
    # the live CML stream round-trips; the in-flight obs payload is
    # driver transport and is deliberately never exported
    if t.cml_stream is not None:
        d["cml_stream"] = t.cml_stream.tolist()
    return d


def _trial_from_dict(d: dict) -> TrialResult:
    t = TrialResult(
        outcome=d["outcome"],
        trap_kind=d.get("trap_kind"),
        faults=tuple(
            FaultSpec(rank=f["rank"], occurrence=f["occurrence"],
                      bit=f.get("bit"), operand=f.get("operand"))
            for f in d.get("faults", [])
        ),
        injected_cycles=tuple(d.get("injected_cycles", [])),
        injected_occurrences=tuple(d.get("injected_occurrences", [])),
        injected_sites=tuple(d.get("injected_sites", [])),
        iterations=d["iterations"],
        cycles=d["cycles"],
        final_cml=d.get("final_cml", 0),
        peak_cml=d.get("peak_cml", 0),
        peak_cml_fraction=d.get("peak_cml_fraction", 0.0),
        ever_contaminated=d.get("ever_contaminated", False),
        ranks_contaminated=d.get("ranks_contaminated", 0),
        first_contamination=tuple(d.get("first_contamination", [])),
        failure_kind=d.get("failure_kind"),
        failure_detail=d.get("failure_detail"),
        retries=d.get("retries", 0),
        pruned_at_cycle=d.get("pruned_at_cycle"),
        forked_at_cycle=d.get("forked_at_cycle"),
        pages_copied=d.get("pages_copied"),
        lane=d.get("lane"),
        stage_timings=d.get("stage_timings"),
    )
    series = d.get("series")
    if series is not None:
        t.times = np.asarray(series["times"], dtype=np.int64)
        t.cml = np.asarray(series["cml"], dtype=np.int64)
        if series.get("live") is not None:
            t.live = np.asarray(series["live"], dtype=np.int64)
        if series.get("ranks") is not None:
            t.ranks_series = np.asarray(series["ranks"], dtype=np.int64)
    if d.get("cml_stream") is not None:
        t.cml_stream = np.asarray(
            d["cml_stream"], dtype=np.int64).reshape(-1, 2)
    return t


def campaign_to_json(campaign: CampaignResult) -> str:
    """Serialise a campaign (including retained series) to JSON text."""
    payload = {
        "format": _FORMAT_VERSION,
        "app_name": campaign.app_name,
        "mode": campaign.mode,
        "n_faults": campaign.n_faults,
        "seed": campaign.seed,
        "golden_iterations": campaign.golden_iterations,
        "golden_cycles": campaign.golden_cycles,
        "golden_rank_cycles": list(campaign.golden_rank_cycles),
        "inj_counts": list(campaign.inj_counts),
        "effective_workers": campaign.effective_workers,
        "health": campaign.health.to_dict() if campaign.health else None,
        "metrics": campaign.metrics,
        "trials": [_trial_to_dict(t) for t in campaign.trials],
    }
    return json.dumps(payload)


def campaign_from_json(text: str) -> CampaignResult:
    d = json.loads(text)
    if d.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported campaign format {d.get('format')!r}")
    return CampaignResult(
        app_name=d["app_name"],
        mode=d["mode"],
        n_faults=d["n_faults"],
        seed=d["seed"],
        golden_iterations=d["golden_iterations"],
        golden_cycles=d["golden_cycles"],
        golden_rank_cycles=tuple(d.get("golden_rank_cycles", [])),
        inj_counts=tuple(d["inj_counts"]),
        trials=[_trial_from_dict(t) for t in d["trials"]],
        effective_workers=d.get("effective_workers", 1),
        health=(CampaignHealth.from_dict(d["health"])
                if d.get("health") else None),
        metrics=d.get("metrics"),
    )


def save_campaign(campaign: CampaignResult, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(campaign_to_json(campaign))
    return path


def load_campaign(path: Union[str, Path]) -> CampaignResult:
    return campaign_from_json(Path(path).read_text())


def trials_to_csv(campaign: CampaignResult,
                  path: Optional[Union[str, Path]] = None) -> str:
    """One row per trial, flat columns — loads straight into pandas/R."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([
        "trial", "outcome", "trap_kind", "rank", "occurrence", "bit",
        "injected_cycle", "site", "iterations", "cycles", "final_cml",
        "peak_cml", "peak_cml_fraction", "ever_contaminated",
        "ranks_contaminated",
    ])
    for i, t in enumerate(campaign.trials):
        fault = t.faults[0] if t.faults else None
        writer.writerow([
            i, t.outcome, t.trap_kind or "",
            fault.rank if fault else "",
            fault.occurrence if fault else "",
            fault.bit if fault is not None and fault.bit is not None else "",
            t.injected_cycles[0] if t.injected_cycles else "",
            t.injected_sites[0] if t.injected_sites else "",
            t.iterations, t.cycles, t.final_cml, t.peak_cml,
            f"{t.peak_cml_fraction:.6f}", int(t.ever_contaminated),
            t.ranks_contaminated,
        ])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
