"""Plain-text rendering of the paper's tables and figures.

Benchmarks print these; EXPERIMENTS.md embeds them.  Each renderer takes
already-computed analysis results, so it is cheap and side-effect free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for c, cell in zip(cols, row):
            c.append(str(cell))
    widths = [max(len(v) for v in col) for col in cols]
    def fmt(values):
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))
    lines = [fmt([c[0] for c in cols])]
    lines.append("  ".join("-" * w for w in widths))
    for i in range(1, len(cols[0])):
        lines.append(fmt([c[i] for c in cols]))
    return "\n".join(lines)


def render_outcome_table(fractions_by_app: Dict[str, Dict[str, float]],
                         blackbox: bool = True) -> str:
    """Fig. 6 as a table: outcome percentages per application."""
    if blackbox:
        keys = ["CO", "WO", "PEX", "C"]
    else:
        keys = ["V", "ONA", "WO", "PEX", "C"]
    rows = []
    for app, fr in fractions_by_app.items():
        rows.append([app] + [f"{100 * fr.get(k, 0.0):.1f}%" for k in keys])
    return render_table(["app"] + keys, rows)


def render_fps_table(fps_results: Sequence) -> str:
    """Table 2: FPS factors and standard deviations per application."""
    rows = [
        [r.app_name, f"{r.fps:.4e}", f"{r.std:.2e}", r.n_trials]
        for r in fps_results
    ]
    return render_table(["App.", "FPS (CML/cycle)", "SDev", "profiles"], rows)


def render_health_summary(health, quarantined_trials: Optional[Sequence] = None) -> str:
    """Post-campaign supervision summary (engine health, not science).

    Takes a :class:`~repro.inject.health.CampaignHealth`; pass the
    quarantined :class:`TrialResult` records to also list each lost
    trial's failure kind and detail.
    """
    lines = [
        f"engine: {health.effective_workers} worker(s)"
        + (f" (of {health.requested_workers} requested)"
           if health.requested_workers != health.effective_workers else "")
        + f", wall time {health.wall_time_s:.1f}s"
    ]
    if getattr(health, "executor", "serial") not in ("serial", "pool") \
            or getattr(health, "shards", 1) > 1:
        line = (f"executor: {health.executor}, "
                f"{health.shards} shard(s)")
        if getattr(health, "shard_reassignments", 0):
            line += (f", {health.shard_reassignments} shard(s) reassigned "
                     "from dead workers")
        lines.append(line)
    if health.resumed_trials:
        lines.append(f"resumed: {health.resumed_trials} trial(s) "
                     "restored from journal")
    timings = getattr(health, "stage_timings", None)
    if timings:
        order = ["artifact_load", "snapshot_restore", "clone", "execute"]
        parts = [f"{stage} {timings[stage]:.2f}s"
                 for stage in order if stage in timings]
        parts += [f"{stage} {secs:.2f}s"
                  for stage, secs in sorted(timings.items())
                  if stage not in order]
        lines.append("stage totals: " + ", ".join(parts))
    if getattr(health, "pruned_trials", 0):
        lines.append(
            f"pruned: {health.pruned_trials} trial(s) converged to the "
            f"golden trajectory early ({health.pruned_cycles} cycles "
            f"spliced instead of executed)"
        )
    if getattr(health, "forked_trials", 0):
        lines.append(
            f"forked: {health.forked_trials} trial(s) ran copy-on-write "
            f"off the shared golden world ({health.pages_copied} page(s) "
            f"privatised)"
        )
    if getattr(health, "journal_recovered_records", 0):
        lines.append(
            f"journal recovery: {health.journal_recovered_records} torn/"
            f"corrupt record(s) dropped; their trials re-executed"
        )
    if getattr(health, "artifacts_quarantined", 0):
        lines.append(
            f"artifacts: {health.artifacts_quarantined} corrupt golden "
            f"artifact(s) quarantined and re-materialised"
        )
    if getattr(health, "io_retries", 0):
        lines.append(f"io: {health.io_retries} transient IO failure(s) "
                     f"absorbed by backoff retry")
    if getattr(health, "degraded", False):
        steps = [e.get("type", "?") for e in health.degradation_events]
        lines.append(
            f"degraded: {health.pool_shrinks} pool shrink(s)"
            + (", serial fallback" if health.serial_fallback else "")
            + f" — ladder events: {steps}"
        )
    if health.clean:
        lines.append("supervision: clean — no retries, no failures")
        return "\n".join(lines)
    lines.append(
        f"supervision: {health.retries} retr"
        f"{'y' if health.retries == 1 else 'ies'}, "
        f"{health.timeouts} watchdog timeout(s), "
        f"{health.worker_crashes} worker crash(es), "
        f"{health.trial_exceptions} trial exception(s), "
        f"{health.worker_respawns} worker respawn(s)"
    )
    if health.quarantined:
        lines.append(f"quarantined: {len(health.quarantined)} trial(s) "
                     f"recorded as HARNESS_FAILURE: "
                     f"{list(health.quarantined)}")
        for index, trial in zip(health.quarantined, quarantined_trials or ()):
            lines.append(f"  trial {index}: {trial.failure_kind} — "
                         f"{trial.failure_detail}")
    return "\n".join(lines)


def render_histogram(
    counts: Sequence[int],
    *,
    width: int = 60,
    label: str = "bin",
) -> str:
    """ASCII bar rendering of a histogram (Fig. 5 style)."""
    counts = list(counts)
    if not counts:
        return "(empty)"
    peak = max(max(counts), 1)
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * max(1 if c > 0 else 0, round(width * c / peak))
        lines.append(f"{label}{i:4d} |{bar} {c}")
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, float]],
    *,
    width: int = 64,
    height: int = 16,
) -> str:
    """Coarse ASCII plot of a time series (Fig. 7/8 profile shapes)."""
    pts = list(series)
    if len(pts) < 2:
        return "(series too short)"
    ts = np.array([p[0] for p in pts], dtype=float)
    ys = np.array([p[1] for p in pts], dtype=float)
    t0, t1 = ts.min(), ts.max()
    y0, y1 = ys.min(), ys.max()
    if t1 == t0 or y1 == y0:
        return "(degenerate series)"
    grid = [[" "] * width for _ in range(height)]
    for t, y in pts:
        xi = min(width - 1, int((t - t0) / (t1 - t0) * (width - 1)))
        yi = min(height - 1, int((y - y0) / (y1 - y0) * (height - 1)))
        grid[height - 1 - yi][xi] = "*"
    lines = [f"{y1:12.1f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{y0:12.1f} +" + "".join(grid[-1]))
    lines.append(" " * 14 + f"t: [{t0:.0f} .. {t1:.0f}] cycles")
    return "\n".join(lines)


def render_downsampled_profile(times, cml, n_points: int = 24) -> str:
    """One-line-per-sample numeric profile (embeds well in reports)."""
    times = np.asarray(times)
    cml = np.asarray(cml)
    if times.size == 0:
        return "(empty profile)"
    idx = np.unique(np.linspace(0, times.size - 1, n_points).astype(int))
    rows = [[int(times[i]), int(cml[i])] for i in idx]
    return render_table(["t (cycles)", "CML"], rows)
