"""Fault-injection coverage analysis (paper Sec. 4.1, Fig. 5).

The campaign must inject uniformly over the application's execution; the
paper verifies this by binning injection times into 500 bins and running
a chi-square test against the uniform distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from ..errors import CampaignError


@dataclass(frozen=True)
class UniformityReport:
    """Chi-square goodness-of-fit of injection times vs uniform."""

    n_samples: int
    n_bins: int
    chi2: float
    p_value: float
    counts: np.ndarray
    expected: float

    @property
    def uniform(self) -> bool:
        """Not rejected at the 5 % level."""
        return self.p_value > 0.05


def coverage_histogram(
    times: Sequence[float],
    n_bins: int = 500,
    t_max: float = None,
) -> UniformityReport:
    """Bin injection times and chi-square-test uniformity (Fig. 5)."""
    t = np.asarray(list(times), dtype=float)
    if t.size == 0:
        raise CampaignError("no injection times recorded")
    if n_bins < 2:
        raise CampaignError(f"need at least 2 bins, got {n_bins}")
    if t.size < 5 * n_bins:
        # Keep expected counts >= 5, the usual chi-square validity rule.
        n_bins = max(2, t.size // 5)
    hi = float(t_max) if t_max is not None else float(t.max())
    counts, _ = np.histogram(t, bins=n_bins, range=(0.0, hi))
    expected = t.size / n_bins
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    p = float(stats.chi2.sf(chi2, df=n_bins - 1))
    return UniformityReport(
        n_samples=t.size,
        n_bins=n_bins,
        chi2=chi2,
        p_value=p,
        counts=counts,
        expected=expected,
    )
