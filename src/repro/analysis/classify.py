"""Outcome classification (paper Sec. 2).

The paper's categories:

* **Vanished (V)** — the fault never reached memory; outputs correct.
* **Output Not Affected (ONA)** — memory state was contaminated but the
  outputs are still within tolerance and the run took no extra
  iterations.
* **Wrong Output (WO)** — outputs outside tolerance.
* **Prolonged EXecution (PEX)** — outputs correct but the application
  needed extra iterations to converge.
* **Crashed (C)** — traps, aborts, deadlocks and hangs.

``CO = V + ONA`` is what an output-variation ("black-box") analysis
reports as "correct": it cannot split V from ONA — only the FPM can
(Sec. 4.3, the paper's headline contradiction).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import List, Optional, Sequence


class Outcome(Enum):
    VANISHED = "V"
    ONA = "ONA"
    WO = "WO"
    PEX = "PEX"
    CRASHED = "C"
    #: black-box correct output: V + ONA indistinguishable
    CO = "CO"
    #: the harness lost the trial (worker crash, watchdog timeout, ...)
    #: after exhausting retries — not an application outcome
    HARNESS_FAILURE = "HF"

    @property
    def is_correct_output(self) -> bool:
        return self in (Outcome.VANISHED, Outcome.ONA, Outcome.CO)


def values_match(a, b, rel_tol: float, abs_tol: float) -> bool:
    """Per-value comparison with relative + absolute tolerance.

    Integers compare exactly when both tolerances are zero.  NaN never
    matches a finite golden value (a NaN output is a wrong output).
    """
    if a == b:
        return True
    try:
        fa = float(a)
        fb = float(b)
    except (TypeError, ValueError, OverflowError):
        return False
    if math.isnan(fa) or math.isnan(fb):
        return False
    if math.isinf(fa) or math.isinf(fb):
        return False
    return abs(fa - fb) <= max(rel_tol * abs(fb), abs_tol)


def outputs_match(
    got: Sequence[Sequence],
    golden: Sequence[Sequence],
    rel_tol: float,
    abs_tol: float,
) -> bool:
    """Rank-by-rank, value-by-value comparison against the golden run."""
    if len(got) != len(golden):
        return False
    for grow, row in zip(golden, got):
        if len(grow) != len(row):
            return False
        for gv, v in zip(grow, row):
            if not values_match(v, gv, rel_tol, abs_tol):
                return False
    return True


def classify(
    *,
    crashed: bool,
    outputs_ok: bool,
    iterations: int,
    golden_iterations: int,
    fpm: bool,
    ever_contaminated: Optional[bool] = None,
) -> Outcome:
    """Classify one fault-injected run.

    ``fpm=False`` yields black-box classes (CO/WO/PEX/C); ``fpm=True``
    additionally splits CO into V and ONA using the shadow-table evidence.
    """
    if crashed:
        return Outcome.CRASHED
    if not outputs_ok:
        return Outcome.WO
    if iterations > golden_iterations:
        return Outcome.PEX
    if not fpm:
        return Outcome.CO
    if ever_contaminated is None:
        raise ValueError("FPM classification requires ever_contaminated")
    return Outcome.ONA if ever_contaminated else Outcome.VANISHED


def outcome_fractions(outcomes: List[Outcome]) -> dict:
    """Fractions per class, with CO derived as V + ONA + CO."""
    n = len(outcomes)
    if n == 0:
        return {}
    counts = {o: 0 for o in Outcome}
    for o in outcomes:
        counts[o] += 1
    fr = {o.value: counts[o] / n for o in Outcome}
    fr["CO"] = (
        counts[Outcome.CO] + counts[Outcome.VANISHED] + counts[Outcome.ONA]
    ) / n
    return fr
