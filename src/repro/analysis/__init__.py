"""Analysis layer: outcome classification, coverage tests, statistics."""

from .classify import Outcome, classify, outcome_fractions, outputs_match, values_match
from .stats import (
    COBreakdown,
    ContaminationStats,
    co_breakdown,
    contamination_stats,
    crash_kind_histogram,
    rank_spread_curve,
)
from .export import (
    campaign_from_json,
    campaign_to_json,
    load_campaign,
    save_campaign,
    trials_to_csv,
)
from .sites import (
    SiteStats,
    collect_site_stats,
    render_site_ranking,
    site_vulnerability,
)
from .uniformity import UniformityReport, coverage_histogram
from .report import (
    render_downsampled_profile,
    render_fps_table,
    render_health_summary,
    render_histogram,
    render_outcome_table,
    render_series,
    render_table,
)

__all__ = [
    "COBreakdown", "ContaminationStats", "Outcome", "UniformityReport",
    "SiteStats", "classify", "co_breakdown", "collect_site_stats",
    "contamination_stats",
    "coverage_histogram", "crash_kind_histogram", "outcome_fractions",
    "outputs_match", "rank_spread_curve", "render_downsampled_profile",
    "render_fps_table", "render_health_summary", "render_histogram",
    "render_outcome_table",
    "render_series", "render_site_ranking", "render_table",
    "site_vulnerability", "values_match", "campaign_from_json",
    "campaign_to_json", "load_campaign", "save_campaign", "trials_to_csv",
]
