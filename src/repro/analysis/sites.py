"""Per-site vulnerability analysis: which code locations matter.

The paper correlates outcomes back to program structure qualitatively
(LULESH's energy check converts WO into aborts; a fault in LAMMPS's
static table never propagates).  This module makes that correlation
quantitative: every fired injection carries its static site id, so a
campaign induces a per-site outcome distribution — the same idea as
SDCTune's site-level SDC-proneness ranking (paper Sec. 6, [27]).

Use :func:`site_vulnerability` to rank sites, e.g. to decide which
operations deserve selective protection (duplication, residue checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .classify import Outcome


@dataclass
class SiteStats:
    """Outcome distribution of faults injected at one static site."""

    site: int
    function: str
    block: str
    text: str
    n: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    contaminated: int = 0
    peak_cml_sum: int = 0

    def frac(self, *outcome_values: str) -> float:
        if self.n == 0:
            return 0.0
        return sum(self.outcomes.get(o, 0) for o in outcome_values) / self.n

    @property
    def sdc_fraction(self) -> float:
        """Silent-data-corruption proneness: WO + PEX + ONA share."""
        return self.frac("WO", "PEX", "ONA")

    @property
    def crash_fraction(self) -> float:
        return self.frac("C")

    @property
    def masked_fraction(self) -> float:
        return self.frac("V", "CO")

    @property
    def mean_peak_cml(self) -> float:
        return self.peak_cml_sum / self.n if self.n else 0.0


def collect_site_stats(campaign, site_table) -> Dict[int, SiteStats]:
    """Aggregate a campaign's trials by the static site that was hit.

    ``site_table`` is ``CompiledProgram.site_table`` for the campaign's
    build (site id -> (function, block, instruction text)).  Trials whose
    fault never fired are skipped.  Multi-fault trials attribute their
    outcome to every fired site (a coarse but standard attribution).
    """
    stats: Dict[int, SiteStats] = {}
    for trial in campaign.trials:
        sites = _fired_sites(trial)
        for site in sites:
            st = stats.get(site)
            if st is None:
                fn, blk, text = site_table.get(site, ("?", "?", "?"))
                st = stats[site] = SiteStats(site, fn, blk, text)
            st.n += 1
            st.outcomes[trial.outcome] = st.outcomes.get(trial.outcome, 0) + 1
            if trial.ever_contaminated:
                st.contaminated += 1
            st.peak_cml_sum += trial.peak_cml
    return stats


def _fired_sites(trial) -> List[int]:
    # TrialResult stores occurrences; events carry sites only via the
    # machine — campaigns persist them in injected_sites when available.
    sites = getattr(trial, "injected_sites", None)
    if sites:
        return list(sites)
    return []


def site_vulnerability(
    campaign,
    site_table,
    *,
    min_samples: int = 2,
    by: str = "sdc",
) -> List[SiteStats]:
    """Rank sites by vulnerability.

    ``by`` selects the ranking key: ``"sdc"`` (silent corruption share),
    ``"crash"``, or ``"cml"`` (mean peak contamination).
    """
    keys = {
        "sdc": lambda s: s.sdc_fraction,
        "crash": lambda s: s.crash_fraction,
        "cml": lambda s: s.mean_peak_cml,
    }
    try:
        key = keys[by]
    except KeyError:
        raise ValueError(f"unknown ranking key {by!r}") from None
    stats = [
        s for s in collect_site_stats(campaign, site_table).values()
        if s.n >= min_samples
    ]
    stats.sort(key=key, reverse=True)
    return stats


def render_site_ranking(ranking: Sequence[SiteStats], top: int = 10) -> str:
    from .report import render_table

    rows = []
    for s in ranking[:top]:
        op = s.text.split("!")[0].strip()
        rows.append([
            s.site, s.function, s.block, op[:44], s.n,
            f"{100 * s.sdc_fraction:.0f}%",
            f"{100 * s.crash_fraction:.0f}%",
            f"{s.mean_peak_cml:.1f}",
        ])
    return render_table(
        ["site", "func", "block", "operation", "hits", "SDC", "crash",
         "mean peak CML"],
        rows,
    )
