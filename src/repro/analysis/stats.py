"""Campaign statistics beyond raw outcome fractions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .classify import Outcome


@dataclass(frozen=True)
class ContaminationStats:
    """Fig. 7f-style summary: how much memory state faults corrupt."""

    app_name: str
    n_trials: int
    #: max over trials of the peak contaminated fraction
    max_peak_fraction: float
    #: mean peak fraction over contaminated trials
    mean_peak_fraction: float
    #: distribution percentiles of peak fractions (50/90/99)
    p50: float
    p90: float
    p99: float


def contamination_stats(app_name: str, trials: Sequence) -> ContaminationStats:
    fracs = np.array(
        [t.peak_cml_fraction for t in trials if t.ever_contaminated],
        dtype=float,
    )
    if fracs.size == 0:
        fracs = np.zeros(1)
    return ContaminationStats(
        app_name=app_name,
        n_trials=len(trials),
        max_peak_fraction=float(fracs.max()),
        mean_peak_fraction=float(fracs.mean()),
        p50=float(np.percentile(fracs, 50)),
        p90=float(np.percentile(fracs, 90)),
        p99=float(np.percentile(fracs, 99)),
    )


@dataclass(frozen=True)
class COBreakdown:
    """Sec. 4.3: how "correct output" splits into Vanished vs ONA."""

    app_name: str
    n_co: int
    n_vanished: int
    n_ona: int

    @property
    def ona_share(self) -> float:
        """Fraction of CO runs whose memory state was contaminated."""
        return self.n_ona / self.n_co if self.n_co else 0.0


def co_breakdown(app_name: str, outcomes: Sequence[Outcome]) -> COBreakdown:
    n_v = sum(1 for o in outcomes if o is Outcome.VANISHED)
    n_ona = sum(1 for o in outcomes if o is Outcome.ONA)
    return COBreakdown(
        app_name=app_name, n_co=n_v + n_ona, n_vanished=n_v, n_ona=n_ona
    )


def rank_spread_curve(trial) -> List[Tuple[int, int]]:
    """Fig. 8 series for one trial: (time, contaminated rank count) steps."""
    if trial.times is None or trial.ranks_series is None:
        return []
    out: List[Tuple[int, int]] = []
    prev = -1
    for t, n in zip(trial.times, trial.ranks_series):
        if n != prev:
            out.append((int(t), int(n)))
            prev = int(n)
    return out


def crash_kind_histogram(trials: Sequence) -> Dict[str, int]:
    """What killed the crashed runs (pointer faults dominate, Sec. 4.2)."""
    hist: Dict[str, int] = {}
    for t in trials:
        if t.trap_kind is not None:
            hist[t.trap_kind] = hist.get(t.trap_kind, 0) + 1
    return hist
