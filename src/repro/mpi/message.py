"""Messages exchanged between simulated MPI processes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

#: Source/tag wildcard, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY = -1


@dataclass
class Message:
    """One point-to-point message, including its FPM contamination header.

    ``records`` is the paper's Fig. 4 extra header: one
    ``(displacement, pristine value)`` pair per contaminated word of the
    payload.  An empty list means the message carries only clean data.
    """

    src: int
    dest: int
    tag: int
    payload: list
    records: List[Tuple[int, object]] = field(default_factory=list)
    #: virtual time at which the send executed (for message-log analysis)
    sent_at: int = 0

    @property
    def count(self) -> int:
        return len(self.payload)

    @property
    def contaminated(self) -> bool:
        return bool(self.records)

    def matches(self, want_src: int, want_tag: int) -> bool:
        return (want_src == ANY or self.src == want_src) and (
            want_tag == ANY or self.tag == want_tag
        )
