"""Simulated MPI runtime: P2P messaging and collectives with FPM support.

Semantics implemented:

* **Eager buffered sends** — ``mpi_send`` never blocks (messages are
  copied into the runtime), which is how small messages behave on real
  MPI implementations and keeps pairwise exchange patterns deadlock-free.
* **Blocking receives** — ``mpi_recv`` suspends the calling machine until
  a matching message (by source and tag, with ``-1`` wildcards) arrives.
* **Collectives** — all ranks must call the same collective in the same
  per-rank sequence position; the runtime matches arrivals by a per-rank
  collective sequence number and executes the operation when the last
  rank arrives.  Mismatched kinds, roots or counts trap (-> Crashed),
  modelling MPI's undefined behaviour under corrupted arguments.

Every payload that crosses process boundaries carries the FPM
contamination header of Fig. 4 (see :mod:`repro.fpm.protocol`), so faults
propagate between ranks exactly as in the paper: *"we embed extra
information about the contaminated data in the message together with the
message itself."*
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..fpm.protocol import apply_message, build_payload
from ..fpm.shadow import same_value
from ..fpm.taint import TaintTable
from ..obs import runtime as _obs
from ..vm.intrinsics import MPI_OP_MAX, MPI_OP_MIN, MPI_OP_SUM
from ..vm.traps import Trap, TrapKind
from .message import ANY, Message


class MPIRuntime:
    """Shared communication state for one simulated job."""

    def __init__(self) -> None:
        self.machines: List = []
        self.queues: List[List[Message]] = []
        self.collectives: Dict[int, dict] = {}
        # Statistics for analysis/reporting.
        self.messages_sent = 0
        self.words_sent = 0
        self.contaminated_messages = 0
        self.contaminated_words_sent = 0

    def attach(self, machines: Sequence) -> None:
        self.machines = list(machines)
        self.queues = [[] for _ in self.machines]
        for m in self.machines:
            m.runtime = self

    @property
    def size(self) -> int:
        return len(self.machines)

    def now(self) -> int:
        """Global virtual time: the most advanced rank's clock."""
        return max((m.cycles for m in self.machines), default=0)

    # ------------------------------------------------------------------
    # Snapshot fast-forward support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Immutable copy of all in-flight communication state.

        Machines inside collective ``parts`` are recorded by rank and
        re-bound to the restoring job's machines on restore, so a
        snapshot never pins live Machine objects.
        """
        queues = tuple(
            tuple(
                (msg.src, msg.dest, msg.tag, tuple(msg.payload),
                 tuple(msg.records), msg.sent_at)
                for msg in q
            )
            for q in self.queues
        )
        collectives = tuple(
            (seq, inst["kind"],
             tuple((rank, tuple(args))
                   for rank, (_mm, args) in sorted(inst["parts"].items())))
            for seq, inst in sorted(self.collectives.items())
        )
        stats = (self.messages_sent, self.words_sent,
                 self.contaminated_messages, self.contaminated_words_sent)
        return (queues, collectives, stats)

    def restore_state(self, state: tuple) -> None:
        """Reset to a state captured by :meth:`snapshot_state`.

        Requires :meth:`attach` to have run first (collective parts are
        re-bound to ``self.machines`` by rank).
        """
        queues, collectives, stats = state
        self.queues = [
            [Message(src, dest, tag, list(payload), list(records), sent_at)
             for (src, dest, tag, payload, records, sent_at) in q]
            for q in queues
        ]
        self.collectives = {
            seq: {
                "kind": kind,
                "parts": {rank: (self.machines[rank], tuple(args))
                          for rank, args in parts},
            }
            for seq, kind, parts in collectives
        }
        (self.messages_sent, self.words_sent,
         self.contaminated_messages, self.contaminated_words_sent) = stats

    def publish_metrics(self) -> None:
        """Fold the job's message totals into an observed trial's metrics.

        Called once per job by the scheduler — :meth:`send` stays
        metric-free on the hot path.  The counters are part of the
        snapshot state, so a fast-forwarded trial reports the same
        totals (restored prefix included) as a cold run.
        """
        if _obs._CURRENT is None:
            return
        _obs.inc("repro_msgs_total", self.messages_sent)
        _obs.inc("repro_words_sent_total", self.words_sent)
        if self.contaminated_messages:
            _obs.inc("repro_msgs_contaminated_total",
                     self.contaminated_messages)
            _obs.inc("repro_contaminated_words_total",
                     self.contaminated_words_sent)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, m, buf: int, count: int, dest: int, tag: int) -> None:
        if not 0 <= dest < self.size:
            raise Trap(TrapKind.MPI, f"send to invalid rank {dest}", rank=m.rank)
        if count < 0:
            raise Trap(TrapKind.MPI, f"send with negative count {count}", rank=m.rank)
        payload, records = build_payload(m.memory, m.fpm, buf, count)
        msg = Message(m.rank, dest, tag, payload, records, sent_at=m.cycles)
        self.messages_sent += 1
        self.words_sent += count
        if records:
            self.contaminated_messages += 1
            self.contaminated_words_sent += len(records)
            if _obs._CURRENT is not None:
                _obs.emit("mpi_send_contaminated", src=m.rank, dest=dest,
                          words=len(records), cycle=m.cycles)

        dm = self.machines[dest]
        pending = dm.pending
        if (
            pending is not None
            and pending.get("kind") == "recv"
            and not pending.get("done")
            and msg.matches(pending["src"], pending["tag"])
        ):
            self._deliver(msg, dm, pending["buf"], pending["count"])
            pending["done"] = True
            dm.wake()
        else:
            self.queues[dest].append(msg)

    def recv(self, m, buf: int, count: int, src: int, tag: int) -> bool:
        """Returns True when the receive completed, False to block."""
        pending = m.pending
        if pending is not None:
            if pending.get("done"):
                m.pending = None
                return True
            return False
        queue = self.queues[m.rank]
        for i, msg in enumerate(queue):
            if msg.matches(src, tag):
                del queue[i]
                self._deliver(msg, m, buf, count)
                return True
        m.pending = {
            "kind": "recv", "buf": buf, "count": count,
            "src": src, "tag": tag, "done": False,
        }
        return False

    def sendrecv(self, m, args: Sequence[int]) -> bool:
        """Combined send+recv (halo exchange); send happens exactly once."""
        sbuf, scount, dest, rbuf, rcount, src, tag = args
        if m.pending is None:
            self.send(m, sbuf, scount, dest, tag)
        return self.recv(m, rbuf, rcount, src, tag)

    def _deliver(self, msg: Message, machine, buf: int, count: int) -> None:
        if msg.count > count:
            raise Trap(
                TrapKind.MPI,
                f"message truncation: {msg.count} words into {count}-word buffer",
                rank=machine.rank,
            )
        apply_message(
            machine.memory, machine.fpm, buf, msg.payload, msg.records,
            cycle=self.now(),
        )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def collective(self, m, kind: str, args: tuple) -> bool:
        """Generic rendezvous; returns True when the operation completed."""
        pending = m.pending
        if pending is not None:
            if pending.get("done"):
                m.pending = None
                return True
            return False

        seq = m.coll_seq
        m.coll_seq += 1
        inst = self.collectives.get(seq)
        if inst is None:
            inst = self.collectives[seq] = {"kind": kind, "parts": {}}
        if inst["kind"] != kind:
            raise Trap(
                TrapKind.MPI,
                f"collective mismatch at sequence {seq}: "
                f"{kind} vs {inst['kind']}",
                rank=m.rank,
            )
        inst["parts"][m.rank] = (m, args)
        if len(inst["parts"]) < self.size:
            m.pending = {"kind": "coll", "done": False}
            return False

        del self.collectives[seq]
        self._execute_collective(kind, inst["parts"])
        for rank, (mm, _) in inst["parts"].items():
            if mm is not m:
                mm.pending["done"] = True
                mm.wake()
        return True

    def _execute_collective(self, kind: str, parts: Dict[int, tuple]) -> None:
        if kind == "barrier":
            return
        if kind == "bcast":
            self._do_bcast(parts)
        elif kind == "allreduce":
            self._do_reduce(parts, to_all=True)
        elif kind == "reduce":
            self._do_reduce(parts, to_all=False)
        elif kind == "allgather":
            self._do_allgather(parts)
        else:  # pragma: no cover - intrinsics constrain kinds
            raise Trap(TrapKind.MPI, f"unknown collective {kind!r}")

    def _common_int(self, parts: Dict[int, tuple], idx: int, what: str) -> int:
        values = {rank: args[idx] for rank, (mm, args) in parts.items()}
        uniq = set(values.values())
        if len(uniq) != 1:
            raise Trap(
                TrapKind.MPI,
                f"collective {what} mismatch across ranks: {sorted(uniq)}",
            )
        return uniq.pop()

    def _do_bcast(self, parts: Dict[int, tuple]) -> None:
        # args = (buf, count, root)
        count = self._common_int(parts, 1, "count")
        root = self._common_int(parts, 2, "root")
        if not 0 <= root < self.size:
            raise Trap(TrapKind.MPI, f"bcast with invalid root {root}")
        rm, rargs = parts[root]
        payload, records = build_payload(rm.memory, rm.fpm, rargs[0], count)
        t = self.now()
        for rank, (mm, args) in parts.items():
            if rank == root:
                continue
            apply_message(mm.memory, mm.fpm, args[0], payload, records, cycle=t)

    def _reduce_fn(self, op: int):
        if op == MPI_OP_SUM:
            return lambda a, b: a + b
        if op == MPI_OP_MIN:
            return lambda a, b: b if b < a else a
        if op == MPI_OP_MAX:
            return lambda a, b: b if b > a else a
        raise Trap(TrapKind.MPI, f"unknown reduction op {op}")

    def _do_reduce(self, parts: Dict[int, tuple], to_all: bool) -> None:
        # allreduce args = (sbuf, rbuf, count, op); reduce adds root at [4].
        count = self._common_int(parts, 2, "count")
        op = self._common_int(parts, 3, "op")
        root = None
        if not to_all:
            root = self._common_int(parts, 4, "root")
            if not 0 <= root < self.size:
                raise Trap(TrapKind.MPI, f"reduce with invalid root {root}")
        fn = self._reduce_fn(op)

        if any(isinstance(mm.fpm, TaintTable) for mm, _ in parts.values()):
            self._do_reduce_taint(parts, to_all, root, count, fn)
            return

        primary = None
        pristine = None
        for rank in sorted(parts):
            mm, args = parts[rank]
            vals = mm.memory.read_block(args[0], count)
            if mm.fpm is not None and mm.fpm.table:
                pvals = [mm.fpm.pristine(args[0] + i, v) for i, v in enumerate(vals)]
            else:
                pvals = vals
            if primary is None:
                primary = list(vals)
                pristine = list(pvals)
            else:
                primary = [fn(a, b) for a, b in zip(primary, vals)]
                pristine = [fn(a, b) for a, b in zip(pristine, pvals)]

        records = [
            (i, p) for i, (v, p) in enumerate(zip(primary, pristine))
            if not same_value(v, p)
        ]
        t = self.now()
        targets = parts.items() if to_all else [(root, parts[root])]
        for rank, (mm, args) in targets:
            apply_message(mm.memory, mm.fpm, args[1], primary, records, cycle=t)

    def _do_reduce_taint(self, parts, to_all, root, count, fn) -> None:
        """Taint-mode reduction: the result is tainted everywhere if any
        contribution overlaps a tainted buffer."""
        primary = None
        tainted = False
        for rank in sorted(parts):
            mm, args = parts[rank]
            vals = mm.memory.read_block(args[0], count)
            if mm.fpm is not None and mm.fpm.tainted_in(args[0], count):
                tainted = True
            if primary is None:
                primary = list(vals)
            else:
                primary = [fn(a, b) for a, b in zip(primary, vals)]
        records = [(i, True) for i in range(count)] if tainted else []
        t = self.now()
        targets = parts.items() if to_all else [(root, parts[root])]
        for rank, (mm, args) in targets:
            apply_message(mm.memory, mm.fpm, args[1], primary, records, cycle=t)

    def _do_allgather(self, parts: Dict[int, tuple]) -> None:
        # args = (sbuf, count, rbuf)
        count = self._common_int(parts, 1, "count")
        chunks = {}
        for rank in sorted(parts):
            mm, args = parts[rank]
            chunks[rank] = build_payload(mm.memory, mm.fpm, args[0], count)
        t = self.now()
        for rank, (mm, args) in parts.items():
            rbuf = args[2]
            for src in sorted(chunks):
                payload, records = chunks[src]
                apply_message(
                    mm.memory, mm.fpm, rbuf + src * count, payload, records,
                    cycle=t,
                )
