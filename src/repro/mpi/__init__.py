"""Simulated MPI: messages, runtime, and the job scheduler.

Stands in for Open MPI + the 1,024-core cluster of the paper's testbed.
"""

from .message import ANY, Message
from .runtime import MPIRuntime
from .scheduler import JobResult, JobStatus, Scheduler

__all__ = ["ANY", "JobResult", "JobStatus", "MPIRuntime", "Message", "Scheduler"]
