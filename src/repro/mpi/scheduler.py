"""Cooperative round-robin scheduler over per-rank VMs.

Simulates parallel execution on the paper's 32-node cluster: each epoch,
every runnable rank executes one quantum of instructions; global virtual
time is the most advanced rank's cycle count.  The scheduler is also the
sampling point for CML(t) propagation traces and the place where
job-level failure modes (crash, deadlock, hang) are decided.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from ..errors import TrialTimeoutError
from ..fpm.tracker import PropagationTrace
from ..vm.machine import Machine, MachineStatus
from ..vm.traps import Trap, TrapKind
from .runtime import MPIRuntime


class JobStatus(Enum):
    #: every rank ran to completion
    COMPLETED = "completed"
    #: a rank trapped (includes mpi_abort) — paper class "Crashed"
    TRAPPED = "trapped"
    #: all remaining ranks blocked with no possible progress
    DEADLOCK = "deadlock"
    #: cycle budget exceeded — paper counts hangs as "Crashed"
    HANG = "hang"


@dataclass
class JobResult:
    status: JobStatus
    trap: Optional[Trap]
    cycles: int
    #: per-rank virtual clocks (a rank's clock does not tick while blocked)
    rank_cycles: List[int]
    #: per-rank outputs emitted via emit()/emiti()
    outputs: List[list]
    #: per-rank mark_iteration() counts
    iterations: List[int]
    trace: Optional[PropagationTrace]
    #: per-rank total injectable-site executions (profiling)
    inj_counts: List[int]
    #: per-rank injection events that actually fired
    injections: List[list]
    #: per-rank ever-contaminated flags (FPM mode)
    ever_contaminated: List[bool]

    @property
    def crashed(self) -> bool:
        return self.status is not JobStatus.COMPLETED

    @property
    def max_iterations(self) -> int:
        return max(self.iterations) if self.iterations else 0

    @property
    def any_contaminated(self) -> bool:
        return any(self.ever_contaminated)


class Scheduler:
    """Runs a set of machines to job completion."""

    def __init__(
        self,
        machines: Sequence[Machine],
        runtime: MPIRuntime,
        *,
        quantum: int = 256,
        max_cycles: int = 50_000_000,
        sample_every: int = 1,
        wall_deadline: Optional[float] = None,
        start_epoch: int = 0,
        trace: Optional[PropagationTrace] = None,
        snapshots=None,
        cml_stream=None,
    ) -> None:
        self.machines = list(machines)
        self.runtime = runtime
        self.quantum = quantum
        self.max_cycles = max_cycles
        self.sample_every = sample_every
        #: monotonic instant after which the job is abandoned with a
        #: TrialTimeoutError — the campaign engine's in-process watchdog
        #: (virtual-time hangs are JobStatus.HANG; this catches the
        #: harness itself running away in wall-clock time)
        self.wall_deadline = wall_deadline
        self.fpm_mode = any(m.fpm is not None for m in self.machines)
        #: epoch to resume counting from (snapshot fast-forward restores
        #: mid-run, and the sample_every phase must match the golden run)
        self.start_epoch = start_epoch
        #: pre-filled trace prefix from a restored snapshot
        self.initial_trace = trace
        #: SnapshotStore to populate at its stride (golden profiling)
        self.snapshots = snapshots
        #: live CML observer (:class:`repro.obs.cml.CMLStream`) attached
        #: to the trace; a restored trace prefix is replayed into it so a
        #: fast-forwarded trial streams exactly what a cold run would
        self.cml_stream = cml_stream

    def run(self) -> JobResult:
        machines = self.machines
        quantum = self.quantum
        if self.initial_trace is not None:
            trace = self.initial_trace
        else:
            trace = PropagationTrace() if self.fpm_mode else None
        if trace is not None and self.cml_stream is not None:
            if trace.times:  # restored prefix: replay it into the stream
                self.cml_stream.backfill(trace.times, trace.cml_per_rank)
            trace.stream = self.cml_stream
        status = JobStatus.COMPLETED
        trap: Optional[Trap] = None
        epoch = self.start_epoch

        while True:
            ran_any = False
            for m in machines:
                if m.status is MachineStatus.READY:
                    ran_any = True
                    if m.run(quantum) is MachineStatus.TRAPPED:
                        status = JobStatus.TRAPPED
                        trap = m.trap
                        break
            if trap is not None:
                break

            epoch += 1
            if (self.wall_deadline is not None
                    and time.monotonic() > self.wall_deadline):
                raise TrialTimeoutError(
                    f"job exceeded its wall-clock watchdog at epoch {epoch}"
                )
            t = max(m.cycles for m in machines)
            if trace is not None and epoch % self.sample_every == 0:
                self._sample(trace, t)
            if self.snapshots is not None:
                self.snapshots.maybe_capture(
                    t, epoch, machines, self.runtime, trace
                )

            if all(m.status is MachineStatus.DONE for m in machines):
                break
            if not any(m.status is MachineStatus.READY for m in machines):
                blocked = [m.rank for m in machines
                           if m.status is MachineStatus.BLOCKED]
                status = JobStatus.DEADLOCK
                trap = Trap(TrapKind.DEADLOCK,
                            f"ranks {blocked} blocked with no progress possible")
                break
            if t > self.max_cycles:
                status = JobStatus.HANG
                trap = Trap(TrapKind.HANG,
                            f"virtual time {t} exceeded budget {self.max_cycles}")
                break
            if not ran_any:  # pragma: no cover - defensive
                status = JobStatus.DEADLOCK
                trap = Trap(TrapKind.DEADLOCK, "no runnable machine")
                break

        if trace is not None:
            # Final sample so the last contamination state is recorded.
            self._sample(trace, max(m.cycles for m in machines))
            trace.first_contamination = [
                m.fpm.first_contamination_cycle if m.fpm is not None else None
                for m in machines
            ]
        # message totals reach the metrics registry once per job
        self.runtime.publish_metrics()

        return JobResult(
            status=status,
            trap=trap,
            cycles=max(m.cycles for m in machines),
            rank_cycles=[m.cycles for m in machines],
            outputs=[list(m.outputs) for m in machines],
            iterations=[m.iteration_count for m in machines],
            trace=trace,
            inj_counts=[m.inj_counter for m in machines],
            injections=[list(m.injection_events) for m in machines],
            ever_contaminated=[m.ever_contaminated for m in machines],
        )

    def _sample(self, trace: PropagationTrace, t: int) -> None:
        cml_ranks = [m.cml for m in self.machines]
        live = sum(m.memory.live_words for m in self.machines)
        n_cont = sum(1 for m in self.machines if m.ever_contaminated)
        trace.sample(t, cml_ranks, live, n_cont)
