"""Cooperative round-robin scheduler over per-rank VMs.

Simulates parallel execution on the paper's 32-node cluster: each epoch,
every runnable rank executes one quantum of instructions; global virtual
time is the most advanced rank's cycle count.  The scheduler is also the
sampling point for CML(t) propagation traces and the place where
job-level failure modes (crash, deadlock, hang) are decided.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from ..errors import TrialTimeoutError
from ..fpm.tracker import PropagationTrace
from ..obs import runtime as _obs
from ..vm.fingerprint import fingerprint_world, quick_signature
from ..vm.machine import Machine, MachineStatus
from ..vm.traps import Trap, TrapKind
from .runtime import MPIRuntime


class JobStatus(Enum):
    #: every rank ran to completion
    COMPLETED = "completed"
    #: a rank trapped (includes mpi_abort) — paper class "Crashed"
    TRAPPED = "trapped"
    #: all remaining ranks blocked with no possible progress
    DEADLOCK = "deadlock"
    #: cycle budget exceeded — paper counts hangs as "Crashed"
    HANG = "hang"


@dataclass
class JobResult:
    status: JobStatus
    trap: Optional[Trap]
    cycles: int
    #: per-rank virtual clocks (a rank's clock does not tick while blocked)
    rank_cycles: List[int]
    #: per-rank outputs emitted via emit()/emiti()
    outputs: List[list]
    #: per-rank mark_iteration() counts
    iterations: List[int]
    trace: Optional[PropagationTrace]
    #: per-rank total injectable-site executions (profiling)
    inj_counts: List[int]
    #: per-rank injection events that actually fired
    injections: List[list]
    #: per-rank ever-contaminated flags (FPM mode)
    ever_contaminated: List[bool]
    #: virtual time at which convergence pruning spliced the golden tail
    #: onto this job, or None for a fully executed run
    pruned_at_cycle: Optional[int] = None

    @property
    def crashed(self) -> bool:
        return self.status is not JobStatus.COMPLETED

    @property
    def max_iterations(self) -> int:
        return max(self.iterations) if self.iterations else 0

    @property
    def any_contaminated(self) -> bool:
        return any(self.ever_contaminated)


class Scheduler:
    """Runs a set of machines to job completion."""

    def __init__(
        self,
        machines: Sequence[Machine],
        runtime: MPIRuntime,
        *,
        quantum: int = 256,
        max_cycles: int = 50_000_000,
        sample_every: int = 1,
        wall_deadline: Optional[float] = None,
        start_epoch: int = 0,
        trace: Optional[PropagationTrace] = None,
        snapshots=None,
        cml_stream=None,
        fingerprints=None,
        prune=None,
        epoch_counters=None,
        cut=None,
    ) -> None:
        self.machines = list(machines)
        self.runtime = runtime
        self.quantum = quantum
        self.max_cycles = max_cycles
        self.sample_every = sample_every
        #: monotonic instant after which the job is abandoned with a
        #: TrialTimeoutError — the campaign engine's in-process watchdog
        #: (virtual-time hangs are JobStatus.HANG; this catches the
        #: harness itself running away in wall-clock time)
        self.wall_deadline = wall_deadline
        self.fpm_mode = any(m.fpm is not None for m in self.machines)
        #: epoch to resume counting from (snapshot fast-forward restores
        #: mid-run, and the sample_every phase must match the golden run)
        self.start_epoch = start_epoch
        #: pre-filled trace prefix from a restored snapshot
        self.initial_trace = trace
        #: SnapshotStore to populate at its stride (golden profiling)
        self.snapshots = snapshots
        #: live CML observer (:class:`repro.obs.cml.CMLStream`) attached
        #: to the trace; a restored trace prefix is replayed into it so a
        #: fast-forwarded trial streams exactly what a cold run would
        self.cml_stream = cml_stream
        #: FingerprintIndex to populate at its stride (golden profiling)
        self.fingerprints = fingerprints
        #: frozen golden FingerprintIndex to compare against (faulted
        #: trials); a match splices the golden tail instead of running it
        self.prune = prune
        #: mutable list to append per-rank ``inj_counter`` tuples into,
        #: one entry per completed epoch (golden profiling records the
        #: dense occurrence timeline fork-at-injection plans against)
        self.epoch_counters = epoch_counters
        #: exponential back-off over full-digest comparisons: a diverged
        #: (e.g. wrong-output) trial whose cheap signature keeps matching
        #: must not pay a live-memory hash at every stride epoch
        self._prune_failures = 0
        self._prune_skip = 0
        #: mid-epoch resume point ``(machine index, leftover budget)``
        #: left by a lane-tier occurrence-cut pause (or given to a trial
        #: scheduler picking up a paused world); consumed by the first
        #: :meth:`run` iteration — machines before the index already ran
        #: their quantum this epoch, the indexed one gets the leftover
        self._cut = cut

    def run(self, stop_at_epoch: Optional[int] = None) -> Optional[JobResult]:
        """Run to job completion, or — with ``stop_at_epoch`` — pause.

        ``stop_at_epoch=e`` pauses at the top of the epoch loop once
        ``e`` epochs have completed and returns ``None``; the scheduler
        then holds exactly the state a fresh scheduler restored from an
        epoch-``e`` snapshot would start from (``start_epoch`` and the
        trace prefix are saved on ``self``), and a later :meth:`run`
        call resumes the loop.  This is the golden-cursor primitive of
        fork-at-injection execution.  If the job finishes before ``e``
        epochs, the final :class:`JobResult` is returned instead.
        """
        machines = self.machines
        quantum = self.quantum
        if self.initial_trace is not None:
            trace = self.initial_trace
        else:
            trace = PropagationTrace() if self.fpm_mode else None
        if trace is not None and self.cml_stream is not None:
            if trace.times:  # restored prefix: replay it into the stream
                self.cml_stream.backfill(trace.times, trace.cml_per_rank)
            trace.stream = self.cml_stream
        status = JobStatus.COMPLETED
        trap: Optional[Trap] = None
        epoch = self.start_epoch
        cut = self._cut
        self._cut = None

        while True:
            # a pending cut means the current epoch is already half run:
            # finish it before the stop check may fire, or a same-epoch
            # mid-epoch resume would pause again without progressing
            if (cut is None and stop_at_epoch is not None
                    and epoch >= stop_at_epoch):
                self.start_epoch = epoch
                self.initial_trace = trace
                return None
            ran_any = cut is not None
            for i, m in enumerate(machines):
                if cut is not None and i < cut[0]:
                    continue  # already ran its quantum this epoch
                if m.status is MachineStatus.READY:
                    ran_any = True
                    b = cut[1] if cut is not None and i == cut[0] \
                        else quantum
                    if m.run(b) is MachineStatus.TRAPPED:
                        status = JobStatus.TRAPPED
                        trap = m.trap
                        break
                    if m._pause_hit:
                        # occurrence-cut pause: park mid-epoch, exactly
                        # resumable by a later run() on this scheduler
                        # or by a trial scheduler given this cut
                        m._pause_hit = False
                        self._cut = (i, m._pause_left)
                        self.start_epoch = epoch
                        self.initial_trace = trace
                        return None
            cut = None
            if trap is not None:
                break

            epoch += 1
            if (self.wall_deadline is not None
                    and time.monotonic() > self.wall_deadline):
                raise TrialTimeoutError(
                    f"job exceeded its wall-clock watchdog at epoch {epoch}"
                )
            t = max(m.cycles for m in machines)
            if self.epoch_counters is not None:
                self.epoch_counters.append(
                    tuple(m.inj_counter for m in machines))
            if trace is not None and epoch % self.sample_every == 0:
                self._sample(trace, t)
            if self.snapshots is not None:
                self.snapshots.maybe_capture(
                    t, epoch, machines, self.runtime, trace
                )
            if self.fingerprints is not None:
                self.fingerprints.maybe_capture(
                    t, epoch, machines, self.runtime, trace
                )
            if self.prune is not None:
                spliced = self._try_prune(epoch, t, trace)
                if spliced is not None:
                    return spliced

            if all(m.status is MachineStatus.DONE for m in machines):
                break
            if not any(m.status is MachineStatus.READY for m in machines):
                blocked = [m.rank for m in machines
                           if m.status is MachineStatus.BLOCKED]
                status = JobStatus.DEADLOCK
                trap = Trap(TrapKind.DEADLOCK,
                            f"ranks {blocked} blocked with no progress possible")
                break
            if t > self.max_cycles:
                status = JobStatus.HANG
                trap = Trap(TrapKind.HANG,
                            f"virtual time {t} exceeded budget {self.max_cycles}")
                break
            if not ran_any:  # pragma: no cover - defensive
                status = JobStatus.DEADLOCK
                trap = Trap(TrapKind.DEADLOCK, "no runnable machine")
                break

        if trace is not None:
            # Final sample so the last contamination state is recorded.
            self._sample(trace, max(m.cycles for m in machines))
            trace.first_contamination = [
                m.fpm.first_contamination_cycle if m.fpm is not None else None
                for m in machines
            ]
        if self.fingerprints is not None:
            self.fingerprints.finalize(machines, self.runtime, trace)
        # message totals reach the metrics registry once per job
        self.runtime.publish_metrics()
        self._drain_tier2()

        return JobResult(
            status=status,
            trap=trap,
            cycles=max(m.cycles for m in machines),
            rank_cycles=[m.cycles for m in machines],
            outputs=[list(m.outputs) for m in machines],
            iterations=[m.iteration_count for m in machines],
            trace=trace,
            inj_counts=[m.inj_counter for m in machines],
            injections=[list(m.injection_events) for m in machines],
            ever_contaminated=[m.ever_contaminated for m in machines],
        )

    def _drain_tier2(self) -> None:
        """Publish and reset the machines' tier-2 transition counters.

        Machines outlive jobs (the fork cursor reuses them across
        trials), so the counters are drained to the metrics registry
        once per job result and zeroed — a paused golden advance keeps
        accumulating and is drained by the run that finishes on those
        machines."""
        enters = deopts = cycles = 0
        for m in self.machines:
            enters += m.t2_enters
            deopts += m.t2_deopts
            cycles += m.t2_cycles_acc
            m.t2_enters = m.t2_deopts = m.t2_cycles_acc = 0
        if enters or deopts or cycles:
            _obs.inc("repro_tier2_enters_total", enters)
            _obs.inc("repro_tier2_deopts_total", deopts)
            _obs.inc("repro_tier2_cycles_total", cycles)

    # ------------------------------------------------------------------
    # Convergence pruning
    # ------------------------------------------------------------------
    def _try_prune(self, epoch: int, t: int,
                   trace: Optional[PropagationTrace]) -> Optional[JobResult]:
        """Splice the golden tail if the world re-converged at ``epoch``.

        Preconditions are checked cheapest-first; every one of them is
        *required* for soundness, not just speed:

        * a golden digest must exist at this exact epoch (golden
          profiling captured here, so per-rank clocks are comparable);
        * every armed fault must have fired (``inj_next == 0``) —
          otherwise the excluded fault plan is not inert;
        * in FPM/taint modes every shadow table must be empty
          (``cml == 0``), making the tables behaviourally identical to
          the golden run's empty tables;
        * the trial must have taken exactly as many trace samples as
          the golden run had at this epoch, or the spliced tail would
          not line up (defensive — sample cadence is epoch-determined).
        """
        fp = self.prune
        digest = fp.digests.get(epoch)
        if digest is None:
            return None
        machines = self.machines
        if any(m.inj_next for m in machines):
            return None
        if self.fpm_mode and any(m.cml for m in machines):
            return None
        if trace is not None and len(trace.times) != fp.sample_counts[epoch]:
            return None
        if self._prune_skip > 0:
            self._prune_skip -= 1
            return None
        if quick_signature(machines) != fp.quick[epoch]:
            return None
        if fingerprint_world(machines, self.runtime) != digest:
            # Quick signature matched but live state differs: likely a
            # silently-corrupted trial that will never converge.  Back
            # off exponentially; pruning at *any* later matched epoch
            # still yields the identical spliced result.
            self._prune_failures += 1
            self._prune_skip = min(2 ** self._prune_failures, 64)
            return None
        return self._spliced(fp, epoch, t, trace)

    def _spliced(self, fp, epoch: int, t: int,
                 trace: Optional[PropagationTrace]) -> JobResult:
        """Build the job result a full run of the golden tail would give."""
        machines = self.machines
        if trace is not None and fp.trace_times is not None:
            # Backfill the CML stream / trace with the zero tail the
            # converged trial would have sampled, at the golden sample
            # times (clocks match, so times match).
            count = fp.sample_counts[epoch]
            n = len(machines)
            frozen = sum(1 for m in machines if m.ever_contaminated)
            for gt, live in zip(fp.trace_times[count:],
                                fp.trace_live[count:]):
                trace.sample(gt, [0] * n, live, frozen)
            trace.first_contamination = [
                m.fpm.first_contamination_cycle if m.fpm is not None else None
                for m in machines
            ]
        # Message totals: the trial's own prefix plus the golden tail
        # delta — the tail is the same deterministic execution, so this
        # equals what the trial would have accumulated itself.
        g_m, g_w, g_cm, g_cw = fp.stats_at[epoch]
        f_m, f_w, f_cm, f_cw = fp.final_stats
        rt = self.runtime
        rt.messages_sent += f_m - g_m
        rt.words_sent += f_w - g_w
        rt.contaminated_messages += f_cm - g_cm
        rt.contaminated_words_sent += f_cw - g_cw
        rt.publish_metrics()
        self._drain_tier2()
        _obs.inc("repro_trials_pruned_total")
        _obs.inc("repro_cycles_pruned_total", fp.final_cycles - t)
        return JobResult(
            status=JobStatus.COMPLETED,
            trap=None,
            cycles=fp.final_cycles,
            rank_cycles=list(fp.final_rank_cycles),
            outputs=[list(o) for o in fp.final_outputs],
            iterations=list(fp.final_iterations),
            trace=trace,
            inj_counts=list(fp.final_inj_counts),
            injections=[list(m.injection_events) for m in machines],
            ever_contaminated=[m.ever_contaminated for m in machines],
            pruned_at_cycle=t,
        )

    def _sample(self, trace: PropagationTrace, t: int) -> None:
        cml_ranks = [m.cml for m in self.machines]
        live = sum(m.memory.live_words for m in self.machines)
        n_cont = sum(1 for m in self.machines if m.ever_contaminated)
        trace.sample(t, cml_ranks, live, n_cont)
