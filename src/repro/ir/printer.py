"""Textual IR dumping, for debugging and golden tests."""

from __future__ import annotations

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Copy,
    FpmLoad,
    FpmStore,
    Instruction,
    Load,
    Ret,
    Store,
)
from .module import Module
from .values import Constant, Register, Value


def _operand(value: Value) -> str:
    if isinstance(value, Register):
        return f"%{value.name}"
    if isinstance(value, Constant):
        return repr(value.value)
    return repr(value)


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of an instruction."""
    tags = ""
    if inst.inject_site is not None:
        tags += f" !site{inst.inject_site}"
    if inst.secondary:
        tags += " !sec"
    if isinstance(inst, BinOp):
        body = f"%{inst.dest.name} = {inst.op} {_operand(inst.lhs)}, {_operand(inst.rhs)}"
    elif isinstance(inst, Cmp):
        body = (
            f"%{inst.dest.name} = {inst.kind}.{inst.pred} "
            f"{_operand(inst.lhs)}, {_operand(inst.rhs)}"
        )
    elif isinstance(inst, Cast):
        body = f"%{inst.dest.name} = {inst.op} {_operand(inst.src)}"
    elif isinstance(inst, Copy):
        body = f"%{inst.dest.name} = copy {_operand(inst.src)}"
    elif isinstance(inst, Alloca):
        body = f"%{inst.dest.name} = alloca {inst.count}"
        if inst.var_name:
            body += f"  ; {inst.var_name}"
    elif isinstance(inst, Load):
        body = f"%{inst.dest.name} = load {_operand(inst.addr)}"
    elif isinstance(inst, Store):
        body = f"store {_operand(inst.value)}, {_operand(inst.addr)}"
    elif isinstance(inst, FpmLoad):
        body = (
            f"%{inst.dest.name}, %{inst.dest_p.name} = fpm_load "
            f"{_operand(inst.addr)}, {_operand(inst.addr_p)}"
        )
    elif isinstance(inst, FpmStore):
        body = (
            f"fpm_store {_operand(inst.value)}, {_operand(inst.value_p)}, "
            f"{_operand(inst.addr)}, {_operand(inst.addr_p)}"
        )
    elif isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.args)
        if inst.dest is not None:
            body = f"%{inst.dest.name} = call {inst.callee}({args})"
        else:
            body = f"call {inst.callee}({args})"
    elif isinstance(inst, Br):
        body = f"br {inst.target.label}"
    elif isinstance(inst, CondBr):
        body = (
            f"condbr {_operand(inst.cond)}, {inst.iftrue.label}, {inst.iffalse.label}"
        )
    elif isinstance(inst, Ret):
        body = f"ret {_operand(inst.value)}" if inst.value is not None else "ret"
    else:  # pragma: no cover - future instruction kinds
        body = f"<{inst.opcode}>"
    return body + tags


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"  {format_instruction(inst)}" for inst in block)
    return "\n".join(lines)


def format_function(func: Function) -> str:
    header = f"func {func.signature} {{"
    if func.is_dual:
        header = f"func [dual] {func.signature} {{"
    lines = [header]
    lines.extend(format_block(b) for b in func)
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    if module.passes_applied:
        parts.append(f"; passes: {', '.join(module.passes_applied)}")
    parts.extend(format_function(f) for f in module)
    return "\n\n".join(parts)
