"""IR values: virtual registers and constants.

The IR uses *mutable* virtual registers rather than SSA.  A register may be
assigned by several instructions (e.g. a loop counter after scalar
promotion); this keeps the dual-chain FPM transformation simple because
every register ``r`` has exactly one shadow register ``r.shadow`` holding
the pristine value, with no phi nodes to pair up.
"""

from __future__ import annotations

from typing import Optional, Union

from .types import FLOAT, INT, PTR, Type


class Value:
    """Base class for anything an instruction can use as an operand."""

    __slots__ = ()

    type: Type


class Register(Value):
    """A function-local virtual register.

    Registers are created through :meth:`repro.ir.function.Function.new_reg`
    which assigns a dense ``index`` used directly by the VM register file.
    ``shadow`` is populated by the dual-chain pass and points at the
    register that carries the pristine (secondary-chain) value.
    """

    __slots__ = ("index", "type", "name", "shadow")

    def __init__(self, index: int, type: Type, name: str = "") -> None:
        self.index = index
        self.type = type
        self.name = name or f"r{index}"
        self.shadow: Optional["Register"] = None

    def __repr__(self) -> str:
        return f"%{self.name}:{self.type.name}"


class Constant(Value):
    """An immediate operand.

    ``value`` is a Python ``int`` (for :data:`~repro.ir.types.INT` and
    :data:`~repro.ir.types.PTR`) or ``float``.
    """

    __slots__ = ("type", "value")

    def __init__(self, type: Type, value: Union[int, float]) -> None:
        if type.is_integral:
            value = int(value)
        elif type.is_float:
            value = float(value)
        else:
            raise TypeError(f"constants cannot have type {type!r}")
        self.type = type
        self.value = value

    def __repr__(self) -> str:
        return f"{self.value}:{self.type.name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((id(self.type), self.value))


def const_int(value: int) -> Constant:
    """Shorthand for an :data:`~repro.ir.types.INT` constant."""
    return Constant(INT, value)


def const_float(value: float) -> Constant:
    """Shorthand for a :data:`~repro.ir.types.FLOAT` constant."""
    return Constant(FLOAT, value)


def const_ptr(value: int) -> Constant:
    """Shorthand for a :data:`~repro.ir.types.PTR` constant."""
    return Constant(PTR, value)
