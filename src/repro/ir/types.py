"""IR type system.

The IR is deliberately small: three first-class value types plus ``void``
for functions that return nothing.  Pointers are untyped word addresses —
the VM memory is word-addressed (one 64-bit integer or float per address),
which matches the paper's unit of contamination: one *memory location*.
"""

from __future__ import annotations


class Type:
    """A singleton IR type.

    Instances are compared by identity; use the module-level constants
    :data:`INT`, :data:`FLOAT`, :data:`PTR` and :data:`VOID`.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    @property
    def is_int(self) -> bool:
        return self is INT

    @property
    def is_float(self) -> bool:
        return self is FLOAT

    @property
    def is_ptr(self) -> bool:
        return self is PTR

    @property
    def is_void(self) -> bool:
        return self is VOID

    @property
    def is_integral(self) -> bool:
        """Ints and pointers share a 64-bit integer runtime representation."""
        return self is INT or self is PTR


#: 64-bit signed integer.
INT = Type("int")
#: IEEE-754 binary64.
FLOAT = Type("float")
#: Word address into process memory (runtime representation: int).
PTR = Type("ptr")
#: Absence of a value (function returns only).
VOID = Type("void")

_BY_NAME = {t.name: t for t in (INT, FLOAT, PTR, VOID)}


def type_by_name(name: str) -> Type:
    """Look up a type by its textual name (used by the IR parser/printer)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown IR type {name!r}") from None
