"""IR verifier: structural and type invariants.

Run after the frontend and after every pass; catching malformed IR here is
vastly cheaper than debugging a miscompiled fault-injection campaign.
"""

from __future__ import annotations

from typing import Set

from ..errors import VerifierError
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Copy,
    FpmLoad,
    FpmStore,
    Load,
    Ret,
    Store,
    result_type,
)
from .module import Module
from .types import FLOAT, INT, PTR, VOID
from .values import Constant, Register, Value


def verify_module(module: Module) -> None:
    """Raise :class:`~repro.errors.VerifierError` on the first violation."""
    for func in module:
        verify_function(func, module)


def _check_defined(value: Value, defined: Set[int], func: Function, where: str) -> None:
    if isinstance(value, Register) and value.index not in defined:
        raise VerifierError(
            f"{func.name}: register %{value.name} used before any definition ({where})"
        )


def verify_function(func: Function, module: Module = None) -> None:
    if not func.blocks:
        raise VerifierError(f"function {func.name!r} has no blocks")

    # Block index density and uniqueness of labels.
    labels = set()
    for i, block in enumerate(func.blocks):
        if block.index != i:
            raise VerifierError(
                f"{func.name}: block {block.label!r} has stale index "
                f"{block.index} (expected {i}); call reindex_blocks()"
            )
        if block.label in labels:
            raise VerifierError(f"{func.name}: duplicate block label {block.label!r}")
        labels.add(block.label)

    block_set = set(id(b) for b in func.blocks)

    # A conservative definedness check: a register must be defined *somewhere*
    # in the function (or be a parameter).  Path-sensitive checking is not
    # needed because the VM initialises the register file to a poison value
    # and traps on reads of poison.
    defined: Set[int] = {p.index for p in func.params}
    for block in func.blocks:
        for inst in block:
            if inst.dest is not None:
                defined.add(inst.dest.index)
            if isinstance(inst, FpmLoad):
                defined.add(inst.dest_p.index)
            if isinstance(inst, Call) and inst.dest_p is not None:
                defined.add(inst.dest_p.index)

    for block in func.blocks:
        if not block.is_terminated:
            raise VerifierError(f"{func.name}: block {block.label!r} has no terminator")
        for pos, inst in enumerate(block):
            if inst.is_terminator and pos != len(block.instructions) - 1:
                raise VerifierError(
                    f"{func.name}: terminator mid-block in {block.label!r}"
                )
            for op in inst.operands():
                _check_defined(op, defined, func, f"{block.label}:{pos}")
            _verify_types(func, inst, module)
            # Branch targets must belong to this function.
            if isinstance(inst, Br) and id(inst.target) not in block_set:
                raise VerifierError(
                    f"{func.name}: branch to foreign block {inst.target.label!r}"
                )
            if isinstance(inst, CondBr):
                for tgt in (inst.iftrue, inst.iffalse):
                    if id(tgt) not in block_set:
                        raise VerifierError(
                            f"{func.name}: branch to foreign block {tgt.label!r}"
                        )


def _verify_types(func: Function, inst, module) -> None:
    name = func.name
    if isinstance(inst, BinOp):
        expected = result_type(inst.op, inst.lhs.type, inst.rhs.type)
        if inst.dest.type is not expected:
            raise VerifierError(
                f"{name}: {inst.op} result type {inst.dest.type}, expected {expected}"
            )
    elif isinstance(inst, Cmp):
        if inst.kind == "icmp":
            if not (inst.lhs.type.is_integral and inst.rhs.type.is_integral):
                raise VerifierError(f"{name}: icmp on non-integral operands")
        else:
            if not (inst.lhs.type.is_float and inst.rhs.type.is_float):
                raise VerifierError(f"{name}: fcmp on non-float operands")
        if inst.dest.type is not INT:
            raise VerifierError(f"{name}: comparison result must be int")
    elif isinstance(inst, Cast):
        rules = {
            "sitofp": (INT, FLOAT),
            "fptosi": (FLOAT, INT),
            "ptrtoint": (PTR, INT),
            "inttoptr": (INT, PTR),
        }
        src_t, dst_t = rules[inst.op]
        if inst.src.type is not src_t or inst.dest.type is not dst_t:
            raise VerifierError(
                f"{name}: {inst.op} has types {inst.src.type} -> {inst.dest.type}"
            )
    elif isinstance(inst, Copy):
        if inst.dest.type is not inst.src.type:
            raise VerifierError(
                f"{name}: copy type mismatch {inst.dest.type} = {inst.src.type}"
            )
    elif isinstance(inst, Alloca):
        if inst.dest.type is not PTR:
            raise VerifierError(f"{name}: alloca result must be ptr")
    elif isinstance(inst, (Load, FpmLoad)):
        if not inst.addr.type.is_ptr:
            raise VerifierError(f"{name}: load address must be ptr")
        if isinstance(inst, FpmLoad):
            if inst.taint:
                if inst.dest_p.type is not INT:
                    raise VerifierError(f"{name}: fpm_load taint dest must be int")
            else:
                if not inst.addr_p.type.is_ptr:
                    raise VerifierError(
                        f"{name}: fpm_load pristine address must be ptr")
                if inst.dest.type is not inst.dest_p.type:
                    raise VerifierError(f"{name}: fpm_load dual dest type mismatch")
    elif isinstance(inst, (Store, FpmStore)):
        if not inst.addr.type.is_ptr:
            raise VerifierError(f"{name}: store address must be ptr")
        if inst.value.type is VOID:
            raise VerifierError(f"{name}: cannot store void")
        if isinstance(inst, FpmStore):
            if inst.taint:
                if inst.value_p.type is not INT:
                    raise VerifierError(f"{name}: fpm_store taint value must be int")
            else:
                if not inst.addr_p.type.is_ptr:
                    raise VerifierError(
                        f"{name}: fpm_store pristine address must be ptr")
                if inst.value.type is not inst.value_p.type:
                    raise VerifierError(f"{name}: fpm_store dual value type mismatch")
    elif isinstance(inst, CondBr):
        if not inst.cond.type.is_int:
            raise VerifierError(f"{name}: condbr condition must be int")
    elif isinstance(inst, Ret):
        want = func.return_type
        if func.is_dual:
            # Dual functions return (primary, pristine) via the VM call
            # protocol; their Ret still carries the primary value and the
            # pristine travels in inst metadata handled by the dual pass.
            pass
        if want is VOID and inst.value is not None:
            raise VerifierError(f"{name}: void function returns a value")
        if want is not VOID and not func.is_dual:
            if inst.value is None:
                raise VerifierError(f"{name}: missing return value")
            if inst.value.type is not want:
                raise VerifierError(
                    f"{name}: return type {inst.value.type}, expected {want}"
                )
    elif isinstance(inst, Call):
        if module is not None and inst.callee in module:
            callee = module[inst.callee]
            n_params = len(callee.params)
            if len(inst.args) != n_params:
                raise VerifierError(
                    f"{name}: call {inst.callee} with {len(inst.args)} args, "
                    f"expected {n_params}"
                )
            for a, p in zip(inst.args, callee.params):
                if a.type is not p.type:
                    raise VerifierError(
                        f"{name}: call {inst.callee} arg type {a.type}, "
                        f"expected {p.type}"
                    )
            if inst.dest is not None and not callee.is_dual:
                if callee.return_type is VOID:
                    raise VerifierError(
                        f"{name}: call {inst.callee} captures void result"
                    )
                if inst.dest.type is not callee.return_type:
                    raise VerifierError(
                        f"{name}: call {inst.callee} result type {inst.dest.type}, "
                        f"expected {callee.return_type}"
                    )
