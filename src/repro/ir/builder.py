"""IRBuilder: convenience API for emitting instructions into blocks.

Used by the frontend lowering, by compiler passes that synthesise code,
and heavily by tests that construct IR by hand.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import IRError
from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Copy,
    Load,
    Ret,
    Store,
    result_type,
)
from .types import FLOAT, INT, PTR, Type, VOID
from .values import Register, Value


class IRBuilder:
    """Emits type-checked instructions at the end of a current block."""

    def __init__(self, func: Function, block: Optional[BasicBlock] = None) -> None:
        self.func = func
        self.block = block

    def position(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, inst):
        if self.block is None:
            raise IRError("IRBuilder has no current block")
        return self.block.append(inst)

    # ------------------------------------------------------------------
    # Arithmetic and logic
    # ------------------------------------------------------------------
    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Register:
        rtype = result_type(op, lhs.type, rhs.type)
        dest = self.func.new_reg(rtype, name)
        self._emit(BinOp(dest, op, lhs, rhs))
        return dest

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Register:
        if not (lhs.type.is_integral and rhs.type.is_integral):
            raise IRError(f"icmp requires integral operands, got {lhs.type}, {rhs.type}")
        dest = self.func.new_reg(INT, name)
        self._emit(Cmp(dest, "icmp", pred, lhs, rhs))
        return dest

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Register:
        if not (lhs.type.is_float and rhs.type.is_float):
            raise IRError(f"fcmp requires float operands, got {lhs.type}, {rhs.type}")
        dest = self.func.new_reg(INT, name)
        self._emit(Cmp(dest, "fcmp", pred, lhs, rhs))
        return dest

    def sitofp(self, src: Value, name: str = "") -> Register:
        if not src.type.is_int:
            raise IRError(f"sitofp requires int operand, got {src.type}")
        dest = self.func.new_reg(FLOAT, name)
        self._emit(Cast(dest, "sitofp", src))
        return dest

    def fptosi(self, src: Value, name: str = "") -> Register:
        if not src.type.is_float:
            raise IRError(f"fptosi requires float operand, got {src.type}")
        dest = self.func.new_reg(INT, name)
        self._emit(Cast(dest, "fptosi", src))
        return dest

    def ptrtoint(self, src: Value, name: str = "") -> Register:
        if not src.type.is_ptr:
            raise IRError(f"ptrtoint requires ptr operand, got {src.type}")
        dest = self.func.new_reg(INT, name)
        self._emit(Cast(dest, "ptrtoint", src))
        return dest

    def inttoptr(self, src: Value, name: str = "") -> Register:
        if not src.type.is_int:
            raise IRError(f"inttoptr requires int operand, got {src.type}")
        dest = self.func.new_reg(PTR, name)
        self._emit(Cast(dest, "inttoptr", src))
        return dest

    def copy(self, src: Value, dest: Optional[Register] = None, name: str = "") -> Register:
        if dest is None:
            dest = self.func.new_reg(src.type, name)
        elif dest.type is not src.type:
            raise IRError(f"copy type mismatch: {dest.type} = {src.type}")
        self._emit(Copy(dest, src))
        return dest

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloca(self, count: int, name: str = "") -> Register:
        dest = self.func.new_reg(PTR, name)
        self._emit(Alloca(dest, count, var_name=name))
        return dest

    def load(self, addr: Value, type: Type, name: str = "") -> Register:
        if not addr.type.is_ptr:
            raise IRError(f"load address must be ptr, got {addr.type}")
        dest = self.func.new_reg(type, name)
        self._emit(Load(dest, addr))
        return dest

    def store(self, value: Value, addr: Value) -> None:
        if not addr.type.is_ptr:
            raise IRError(f"store address must be ptr, got {addr.type}")
        if value.type is VOID:
            raise IRError("cannot store a void value")
        self._emit(Store(value, addr))

    def padd(self, ptr: Value, offset: Value, name: str = "") -> Register:
        return self.binop("padd", ptr, offset, name)

    # ------------------------------------------------------------------
    # Calls and control flow
    # ------------------------------------------------------------------
    def call(
        self,
        callee: str,
        args: Sequence[Value],
        ret_type: Type = VOID,
        name: str = "",
    ) -> Optional[Register]:
        dest = None if ret_type is VOID else self.func.new_reg(ret_type, name)
        self._emit(Call(dest, callee, args))
        return dest

    def br(self, target: BasicBlock) -> None:
        self._emit(Br(target))

    def condbr(self, cond: Value, iftrue: BasicBlock, iffalse: BasicBlock) -> None:
        if not cond.type.is_int:
            raise IRError(f"condbr condition must be int, got {cond.type}")
        self._emit(CondBr(cond, iftrue, iffalse))

    def ret(self, value: Optional[Value] = None) -> None:
        want = self.func.return_type
        if want is VOID:
            if value is not None:
                raise IRError(f"void function {self.func.name!r} cannot return a value")
        else:
            if value is None:
                raise IRError(f"function {self.func.name!r} must return {want}")
            if value.type is not want:
                raise IRError(
                    f"return type mismatch in {self.func.name!r}: "
                    f"{value.type} != {want}"
                )
        self._emit(Ret(value))
