"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import IRError
from .instructions import Br, CondBr, Instruction


class BasicBlock:
    """A labelled sequence of instructions with a single terminator.

    Blocks are owned by a :class:`~repro.ir.function.Function`; the function
    assigns each block a dense ``index`` used by the VM for branch targets.
    """

    __slots__ = ("label", "index", "instructions")

    def __init__(self, label: str) -> None:
        self.label = label
        self.index = -1
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(
                f"block {self.label!r} already terminated; cannot append {inst.opcode}"
            )
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Br):
            return [term.target]
        if isinstance(term, CondBr):
            return [term.iftrue, term.iffalse]
        return []

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.instructions)} insts)>"
