"""IR modules: a named collection of functions (one per compiled program)."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import IRError
from .function import Function


class Module:
    """A compilation unit.

    ``passes_applied`` records the pass pipeline history so passes can
    enforce ordering constraints (e.g. dual-chain must run after scalar
    promotion, fault-site marking before dual-chain).
    """

    __slots__ = ("name", "functions", "passes_applied", "num_inject_sites")

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.passes_applied: list = []
        #: total number of static injection sites assigned by the
        #: fault-injection pass (0 until that pass runs).
        self.num_inject_sites = 0

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise IRError(f"duplicate function {func.name!r} in module {self.name!r}")
        self.functions[func.name] = func
        return func

    def get(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def __getitem__(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"
