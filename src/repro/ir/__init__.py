"""Typed register-machine IR — the instrumentation substrate.

This package plays the role LLVM IR plays in the paper: the MiniHPC
frontend lowers programs to this IR, the fault-injection pass marks
injectable sites on it, and the dual-chain FPM pass rewrites it into
primary/secondary instruction chains (paper Sec. 3.2, Figs. 2-3).
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Copy,
    FLOAT_BINOPS,
    FpmLoad,
    FpmStore,
    INT_BINOPS,
    Instruction,
    Load,
    PTR_BINOPS,
    Ret,
    Store,
    result_type,
)
from .module import Module
from .parser import parse_module
from .printer import format_function, format_instruction, format_module
from .types import FLOAT, INT, PTR, Type, VOID, type_by_name
from .values import Constant, Register, Value, const_float, const_int, const_ptr
from .verifier import verify_function, verify_module

__all__ = [
    "Alloca", "BasicBlock", "BinOp", "Br", "Call", "Cast", "Cmp", "CondBr",
    "Constant", "Copy", "FLOAT", "FLOAT_BINOPS", "FpmLoad", "FpmStore",
    "Function", "INT", "INT_BINOPS", "IRBuilder", "Instruction", "Load",
    "Module", "PTR", "PTR_BINOPS", "Register", "Ret", "Store", "Type",
    "VOID", "Value", "const_float", "const_int", "const_ptr",
    "format_function", "format_instruction", "format_module", "parse_module",
    "result_type",
    "type_by_name", "verify_function", "verify_module",
]
