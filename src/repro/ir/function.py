"""IR functions: register factory, block list, and signature."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..errors import IRError
from .basicblock import BasicBlock
from .types import Type, VOID
from .values import Register


class Function:
    """A function: named, typed parameters, basic blocks, return type.

    The function owns its virtual registers; :meth:`new_reg` hands out
    registers with dense indices so the VM can use a flat list as the
    register file.  ``is_dual`` is set by the dual-chain pass — dual
    functions take interleaved (primary, pristine) parameters and return a
    (primary, pristine) pair.
    """

    __slots__ = (
        "name",
        "params",
        "return_type",
        "blocks",
        "_next_reg",
        "is_dual",
        "attributes",
    )

    def __init__(
        self, name: str, param_types: Sequence[Type], return_type: Type,
        param_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self._next_reg = 0
        self.is_dual = False
        #: free-form metadata, e.g. ``{"no_instrument": True}`` for runtime
        #: helpers that must not receive fault-injection sites.
        self.attributes: dict = {}
        names = list(param_names) if param_names is not None else []
        self.params: List[Register] = []
        for i, t in enumerate(param_types):
            pname = names[i] if i < len(names) else f"arg{i}"
            self.params.append(self.new_reg(t, pname))

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def new_reg(self, type: Type, name: str = "") -> Register:
        reg = Register(self._next_reg, type, name)
        self._next_reg += 1
        return reg

    @property
    def num_regs(self) -> int:
        return self._next_reg

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def new_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        block.index = len(self.blocks)
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def reindex_blocks(self) -> None:
        """Reassign dense block indices after passes add/remove blocks."""
        for i, block in enumerate(self.blocks):
            block.index = i

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    @property
    def signature(self) -> str:
        params = ", ".join(f"{p.name}: {p.type.name}" for p in self.params)
        ret = self.return_type.name if self.return_type is not VOID else "void"
        return f"{self.name}({params}) -> {ret}"

    def __repr__(self) -> str:
        return f"<Function {self.signature} ({len(self.blocks)} blocks)>"
