"""Textual IR parser — round-trips with :mod:`repro.ir.printer`.

Lets tooling and tests author IR directly, diff pass output against
golden dumps, and reload `repro compile` output.  The accepted grammar is
exactly what :func:`~repro.ir.printer.format_module` emits, e.g.::

    ; module demo
    func main(rank: int, size: int) -> void {
    entry:
      %a.addr = alloca 4  ; a
      br body
    body:
      %r5 = fmul %x, 2.0 !site3
      store %r5, %a.addr
      ret
    }

Dual-mode constructs (``fpm_load``/``fpm_store``, dual rets) parse too,
so FPM-transformed modules round-trip.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import IRError
from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    CAST_OPS,
    FCMP_PREDS,
    FLOAT_BINOPS,
    ICMP_PREDS,
    INT_BINOPS,
    PTR_BINOPS,
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    Copy,
    FpmLoad,
    FpmStore,
    Load,
    Ret,
    Store,
)
from .module import Module
from .types import FLOAT, INT, PTR, Type, VOID, type_by_name
from .values import Constant, Register, Value

_BINOPS = set(INT_BINOPS) | set(FLOAT_BINOPS) | set(PTR_BINOPS)

_FUNC_RE = re.compile(
    r"^func\s+(?:\[dual\]\s+)?(\w+)\((.*)\)\s*(?:->\s*(\w+))?\s*\{$"
)
_LABEL_RE = re.compile(r"^(\w[\w.]*):$")
_REG_RE = re.compile(r"^%([\w.]+)$")


class _FunctionParser:
    def __init__(self, name: str, params: List[Tuple[str, Type]],
                 ret: Type) -> None:
        self.func = Function(name, [t for _, t in params], ret,
                             [n for n, _ in params])
        self.regs: Dict[str, Register] = {p.name: p for p in self.func.params}
        #: registers whose type was guessed (e.g. load results: memory is
        #: untyped words) — a later, stronger use may re-type them
        self.weak: set = set()
        self.blocks: Dict[str, BasicBlock] = {}
        #: labels in definition order (forward branch references create
        #: blocks early; the printed order is the label order)
        self.label_order: List[str] = []
        self.current: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        blk = self.blocks.get(label)
        if blk is None:
            blk = self.func.new_block(label)
            self.blocks[label] = blk
        return blk

    def reg(self, name: str, type: Optional[Type] = None,
            weak: bool = False) -> Register:
        r = self.regs.get(name)
        if r is None:
            if type is None:
                raise IRError(f"use of undefined register %{name} "
                              f"(cannot infer its type)")
            r = self.func.new_reg(type, name)
            self.regs[name] = r
            if weak:
                self.weak.add(name)
        elif type is not None and r.type is not type and name in self.weak \
                and not weak:
            # a strongly-typed use wins over the earlier guess
            r.type = type
            self.weak.discard(name)
        return r

    def value(self, text: str, type_hint: Optional[Type] = None) -> Value:
        text = text.strip()
        m = _REG_RE.match(text)
        if m:
            return self.reg(m.group(1), type_hint,
                            weak=(type_hint is None))
        if text.startswith("-") or text[0].isdigit():
            if any(c in text for c in ".eE") and not text.lstrip("-").isdigit():
                return Constant(FLOAT, float(text))
            return Constant(type_hint if type_hint in (INT, PTR) else INT,
                            int(text))
        raise IRError(f"cannot parse operand {text!r}")


def _split_args(text: str) -> List[str]:
    text = text.strip()
    return [a.strip() for a in text.split(",")] if text else []


def _strip_tags(line: str) -> Tuple[str, Optional[int], bool]:
    """Remove !siteN / !sec annotations and trailing ; comments."""
    site = None
    secondary = False
    if ";" in line:
        line = line.split(";", 1)[0]
    parts = line.split()
    kept = []
    for p in parts:
        if p == "!sec":
            secondary = True
        elif p.startswith("!site"):
            site = int(p[5:])
        else:
            kept.append(p)
    return " ".join(kept), site, secondary


def parse_module(text: str) -> Module:
    """Parse a textual module dump back into IR."""
    module = Module("parsed")
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line or line.startswith(";"):
            if line.startswith("; module"):
                module.name = line.split("; module", 1)[1].strip() or "parsed"
            continue
        m = _FUNC_RE.match(line)
        if not m:
            raise IRError(f"expected function header, got {line!r}")
        name, params_text, ret_name = m.group(1), m.group(2), m.group(3)
        is_dual = "[dual]" in line
        params: List[Tuple[str, Type]] = []
        for p in _split_args(params_text):
            if not p:
                continue
            pname, ptype = [x.strip() for x in p.split(":")]
            params.append((pname, type_by_name(ptype)))
        ret = VOID if ret_name in (None, "void") else type_by_name(ret_name)
        fp = _FunctionParser(name, params, ret)
        fp.func.is_dual = is_dual

        # function body
        while i < len(lines):
            body_line = lines[i].strip()
            i += 1
            if body_line == "}":
                break
            if not body_line or body_line.startswith(";"):
                continue
            lbl = _LABEL_RE.match(body_line)
            if lbl:
                fp.current = fp.block(lbl.group(1))
                fp.label_order.append(lbl.group(1))
                continue
            if fp.current is None:
                raise IRError(f"instruction outside a block: {body_line!r}")
            _parse_instruction(fp, body_line)

        # dual param interleaving bookkeeping: shadow pointers
        if is_dual:
            ps = fp.func.params
            for primary, shadow in zip(ps[0::2], ps[1::2]):
                primary.shadow = shadow
        # restore printed block order (forward references created some
        # blocks before their label line)
        ordered = [fp.blocks[l] for l in fp.label_order]
        leftovers = [b for b in fp.func.blocks if b not in ordered]
        fp.func.blocks = ordered + leftovers
        fp.func.reindex_blocks()
        module.add_function(fp.func)
    return module


def _parse_instruction(fp: _FunctionParser, line: str) -> None:
    text, site, secondary = _strip_tags(line)
    inst = _build_instruction(fp, text)
    if inst is None:
        return
    inst.inject_site = site
    inst.secondary = secondary
    fp.current.instructions.append(inst)


def _build_instruction(fp: _FunctionParser, text: str):
    # terminators and non-dest forms first
    if text == "ret":
        return Ret()
    if text.startswith("ret "):
        vals = _split_args(text[4:])
        want = fp.func.return_type if fp.func.return_type is not VOID else INT
        inst = Ret(fp.value(vals[0], want))
        if len(vals) > 1:
            inst.value_p = fp.value(vals[1], want)
        return inst
    if text.startswith("br "):
        return Br(fp.block(text[3:].strip()))
    if text.startswith("condbr "):
        cond, t1, t2 = _split_args(text[7:])
        return CondBr(fp.value(cond, INT), fp.block(t1), fp.block(t2))
    if text.startswith("store "):
        v, a = _split_args(text[6:])
        addr = fp.value(a, PTR)
        return Store(fp.value(v, FLOAT if "." in v else INT), addr)
    if text.startswith("fpm_store "):
        v, vp, a, ap = _split_args(text[10:])
        inst = FpmStore(fp.value(v, FLOAT), fp.value(vp, FLOAT),
                        fp.value(a, PTR), fp.value(ap, PTR))
        return inst
    if text.startswith("call "):
        return _parse_call(fp, None, None, text[5:])

    # "%dest[, %dest_p] = rhs"
    if "=" not in text:
        raise IRError(f"cannot parse instruction {text!r}")
    lhs, rhs = [x.strip() for x in text.split("=", 1)]
    dests = _split_args(lhs)
    rhs_inst = _parse_rhs(fp, dests, rhs)
    return rhs_inst


def _parse_call(fp: _FunctionParser, dest_name, dest_p_name, text: str):
    m = re.match(r"^(\w+)\((.*)\)$", text.strip())
    if not m:
        raise IRError(f"cannot parse call {text!r}")
    callee, args_text = m.group(1), m.group(2)
    from ..vm.intrinsics import get_intrinsic, intrinsic_ret_ir_type
    args = [fp.value(a, FLOAT if "." in a else INT)
            for a in _split_args(args_text)]
    dest = None
    if dest_name is not None:
        spec = get_intrinsic(callee)
        rtype = intrinsic_ret_ir_type(spec) if spec is not None else INT
        dest = fp.reg(dest_name, rtype or INT)
    inst = Call(dest, callee, args)
    if dest_p_name is not None:
        inst.dest_p = fp.reg(dest_p_name, dest.type if dest else INT)
    return inst


def _parse_rhs(fp: _FunctionParser, dests: List[str], rhs: str):
    dest_names = [d.lstrip("%") for d in dests]
    op, _, rest = rhs.partition(" ")

    if op == "alloca":
        return Alloca(fp.reg(dest_names[0], PTR), int(rest.strip()))
    if op == "load":
        # result type unknowable from text (word memory is untyped):
        # guess FLOAT weakly; later uses may re-type it
        return Load(fp.reg(dest_names[0], FLOAT, weak=True),
                    fp.value(rest, PTR))
    if op == "fpm_load":
        a, ap = _split_args(rest)
        return FpmLoad(fp.reg(dest_names[0], FLOAT, weak=True),
                       fp.reg(dest_names[1], FLOAT, weak=True),
                       fp.value(a, PTR), fp.value(ap, PTR))
    if op == "copy":
        src = fp.value(rest, None if rest.strip().startswith("%") else
                       (FLOAT if "." in rest else INT))
        return Copy(fp.reg(dest_names[0], src.type), src)
    if op == "call":
        return _parse_call(fp, dest_names[0],
                           dest_names[1] if len(dest_names) > 1 else None,
                           rest)
    if op in _BINOPS:
        hint = FLOAT if op in FLOAT_BINOPS else (
            PTR if op in PTR_BINOPS else INT)
        l, r = _split_args(rest)
        lhs = fp.value(l, hint)
        rhs_v = fp.value(r, INT if op in PTR_BINOPS else hint)
        from .instructions import result_type
        return BinOp(fp.reg(dest_names[0], result_type(op, lhs.type, rhs_v.type)),
                     op, lhs, rhs_v)
    if "." in op:
        kind, pred = op.split(".", 1)
        if kind == "icmp" and pred in ICMP_PREDS or \
                kind == "fcmp" and pred in FCMP_PREDS:
            hint = FLOAT if kind == "fcmp" else INT
            l, r = _split_args(rest)
            return Cmp(fp.reg(dest_names[0], INT), kind, pred,
                       fp.value(l, hint), fp.value(r, hint))
    if op in CAST_OPS:
        rules = {"sitofp": (INT, FLOAT), "fptosi": (FLOAT, INT),
                 "ptrtoint": (PTR, INT), "inttoptr": (INT, PTR)}
        src_t, dst_t = rules[op]
        return Cast(fp.reg(dest_names[0], dst_t), op, fp.value(rest, src_t))
    raise IRError(f"unknown instruction opcode {op!r}")
