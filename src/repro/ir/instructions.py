"""IR instruction set.

The instruction set is a small, typed register machine modelled on the
subset of LLVM IR that LLFI instruments:

* arithmetic / bitwise binary operations (``BinOp``),
* comparisons (``Cmp``), casts (``Cast``), register copies (``Copy``),
* memory operations (``Alloca``, ``Load``, ``Store``),
* calls (``Call``) — user functions and intrinsics share one opcode,
* control flow terminators (``Br``, ``CondBr``, ``Ret``),
* FPM fused memory operations (``FpmLoad``, ``FpmStore``) that only the
  dual-chain pass creates — they carry both the potentially-corrupted and
  the pristine register of the paper's primary/secondary chains.

Each instruction carries two pieces of instrumentation metadata:

``inject_site``
    Integer site id assigned by the fault-injection pass.  At runtime the
    VM counts dynamic executions of marked sites; the fault plan names a
    (site-occurrence) pair to corrupt, which reproduces LLFI's "flip a bit
    in a live source register" model.
``secondary``
    True for instructions replicated into the pristine chain; secondary
    instructions are never injection sites and never observable side
    effects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..errors import IRError
from .types import FLOAT, INT, PTR, Type
from .values import Constant, Register, Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .basicblock import BasicBlock

# Integer binary opcodes (operands INT, result INT).
INT_BINOPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "ashr")
# Float binary opcodes (operands FLOAT, result FLOAT).
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
# Pointer arithmetic: ptr +/- int -> ptr.
PTR_BINOPS = ("padd", "psub")

ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDS = ("oeq", "one", "olt", "ole", "ogt", "oge")

CAST_OPS = ("sitofp", "fptosi", "ptrtoint", "inttoptr")


class Instruction:
    """Base class for all IR instructions."""

    __slots__ = ("dest", "inject_site", "secondary")

    opcode: str = "?"

    def __init__(self, dest: Optional[Register]) -> None:
        self.dest = dest
        self.inject_site: Optional[int] = None
        self.secondary: bool = False

    def operands(self) -> Tuple[Value, ...]:
        """All value operands read by this instruction."""
        return ()

    def replace_operands(self, mapping) -> None:
        """Rewrite operands through ``mapping`` (Value -> Value callable)."""

    @property
    def is_terminator(self) -> bool:
        return False

    def __repr__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)


class BinOp(Instruction):
    """``dest = op lhs, rhs`` for arithmetic/bitwise/pointer opcodes."""

    __slots__ = ("op", "lhs", "rhs")

    opcode = "binop"

    def __init__(self, dest: Register, op: str, lhs: Value, rhs: Value) -> None:
        if op not in INT_BINOPS and op not in FLOAT_BINOPS and op not in PTR_BINOPS:
            raise IRError(f"unknown binary opcode {op!r}")
        super().__init__(dest)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> Tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping) -> None:
        self.lhs = mapping(self.lhs)
        self.rhs = mapping(self.rhs)


class Cmp(Instruction):
    """``dest = icmp/fcmp.pred lhs, rhs`` producing INT 0/1."""

    __slots__ = ("kind", "pred", "lhs", "rhs")

    opcode = "cmp"

    def __init__(
        self, dest: Register, kind: str, pred: str, lhs: Value, rhs: Value
    ) -> None:
        if kind == "icmp":
            if pred not in ICMP_PREDS:
                raise IRError(f"unknown icmp predicate {pred!r}")
        elif kind == "fcmp":
            if pred not in FCMP_PREDS:
                raise IRError(f"unknown fcmp predicate {pred!r}")
        else:
            raise IRError(f"unknown comparison kind {kind!r}")
        super().__init__(dest)
        self.kind = kind
        self.pred = pred
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> Tuple[Value, ...]:
        return (self.lhs, self.rhs)

    def replace_operands(self, mapping) -> None:
        self.lhs = mapping(self.lhs)
        self.rhs = mapping(self.rhs)


class Cast(Instruction):
    """``dest = castop src`` between INT, FLOAT and PTR."""

    __slots__ = ("op", "src")

    opcode = "cast"

    def __init__(self, dest: Register, op: str, src: Value) -> None:
        if op not in CAST_OPS:
            raise IRError(f"unknown cast opcode {op!r}")
        super().__init__(dest)
        self.op = op
        self.src = src

    def operands(self) -> Tuple[Value, ...]:
        return (self.src,)

    def replace_operands(self, mapping) -> None:
        self.src = mapping(self.src)


class Copy(Instruction):
    """``dest = src`` — register move, created by scalar promotion."""

    __slots__ = ("src",)

    opcode = "copy"

    def __init__(self, dest: Register, src: Value) -> None:
        super().__init__(dest)
        self.src = src

    def operands(self) -> Tuple[Value, ...]:
        return (self.src,)

    def replace_operands(self, mapping) -> None:
        self.src = mapping(self.src)


class Alloca(Instruction):
    """``dest = alloca count`` — reserve ``count`` words of stack memory.

    ``count`` is a compile-time constant; variable-length allocation goes
    through the ``malloc`` intrinsic instead.
    """

    __slots__ = ("count", "var_name")

    opcode = "alloca"

    def __init__(self, dest: Register, count: int, var_name: str = "") -> None:
        if count <= 0:
            raise IRError(f"alloca count must be positive, got {count}")
        super().__init__(dest)
        self.count = int(count)
        self.var_name = var_name


class Load(Instruction):
    """``dest = load addr``."""

    __slots__ = ("addr",)

    opcode = "load"

    def __init__(self, dest: Register, addr: Value) -> None:
        super().__init__(dest)
        self.addr = addr

    def operands(self) -> Tuple[Value, ...]:
        return (self.addr,)

    def replace_operands(self, mapping) -> None:
        self.addr = mapping(self.addr)


class Store(Instruction):
    """``store value, addr``."""

    __slots__ = ("value", "addr")

    opcode = "store"

    def __init__(self, value: Value, addr: Value) -> None:
        super().__init__(None)
        self.value = value
        self.addr = addr

    def operands(self) -> Tuple[Value, ...]:
        return (self.value, self.addr)

    def replace_operands(self, mapping) -> None:
        self.value = mapping(self.value)
        self.addr = mapping(self.addr)


class Call(Instruction):
    """``dest = call callee(args...)``; ``callee`` is resolved by name.

    Intrinsics (math library, MPI, I/O, memory management) use the same
    instruction with a name the VM recognises; see
    :mod:`repro.vm.intrinsics`.

    ``dest_p`` is set by the dual-chain pass on calls to dual functions:
    the callee returns a (primary, pristine) pair and the pristine half
    lands in ``dest_p``.
    """

    __slots__ = ("callee", "args", "dest_p")

    opcode = "call"

    def __init__(
        self, dest: Optional[Register], callee: str, args: Sequence[Value]
    ) -> None:
        super().__init__(dest)
        self.callee = callee
        self.args: List[Value] = list(args)
        self.dest_p: Optional[Register] = None

    def operands(self) -> Tuple[Value, ...]:
        return tuple(self.args)

    def replace_operands(self, mapping) -> None:
        self.args = [mapping(a) for a in self.args]


class Br(Instruction):
    """Unconditional branch."""

    __slots__ = ("target",)

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(None)
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return True


class CondBr(Instruction):
    """``condbr cond, iftrue, iffalse`` — branches on INT truthiness.

    Control flow always consumes the *primary* (potentially-corrupted)
    register: the pristine chain follows the faulty control path, exactly
    as in the paper's replicated-instruction scheme.
    """

    __slots__ = ("cond", "iftrue", "iffalse")

    opcode = "condbr"

    def __init__(self, cond: Value, iftrue: "BasicBlock", iffalse: "BasicBlock") -> None:
        super().__init__(None)
        self.cond = cond
        self.iftrue = iftrue
        self.iffalse = iffalse

    def operands(self) -> Tuple[Value, ...]:
        return (self.cond,)

    def replace_operands(self, mapping) -> None:
        self.cond = mapping(self.cond)

    @property
    def is_terminator(self) -> bool:
        return True


class Ret(Instruction):
    """``ret value`` or bare ``ret`` for void functions.

    ``value_p`` is set by the dual-chain pass in dual functions: the
    pristine half of the returned pair.
    """

    __slots__ = ("value", "value_p")

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(None)
        self.value = value
        self.value_p: Optional[Value] = None

    def operands(self) -> Tuple[Value, ...]:
        ops = []
        if self.value is not None:
            ops.append(self.value)
        if self.value_p is not None:
            ops.append(self.value_p)
        return tuple(ops)

    def replace_operands(self, mapping) -> None:
        if self.value is not None:
            self.value = mapping(self.value)
        if self.value_p is not None:
            self.value_p = mapping(self.value_p)

    @property
    def is_terminator(self) -> bool:
        return True


class FpmLoad(Instruction):
    """Fused FPM load: ``dest = mem[addr]; dest_p = pristine(addr_p)``.

    Implements the paper's ``fpm_fetch``: the pristine value is the shadow
    hash-table entry for ``addr_p`` if the location is contaminated, else
    the memory cell itself.  A corrupted address register makes
    ``addr != addr_p``, in which case the pristine chain reads the cell the
    fault-free execution would have read.
    """

    __slots__ = ("dest_p", "addr", "addr_p", "taint")

    opcode = "fpm_load"

    def __init__(
        self, dest: Register, dest_p: Register, addr: Value, addr_p: Value
    ) -> None:
        super().__init__(dest)
        self.dest_p = dest_p
        self.addr = addr
        self.addr_p = addr_p
        #: True when created by the taintchain pass: dest_p carries a
        #: one-bit taint instead of a pristine value.
        self.taint = False

    def operands(self) -> Tuple[Value, ...]:
        return (self.addr, self.addr_p)

    def replace_operands(self, mapping) -> None:
        self.addr = mapping(self.addr)
        self.addr_p = mapping(self.addr_p)


class FpmStore(Instruction):
    """Fused FPM store: ``mem[addr] = value`` plus contamination tracking.

    Implements the paper's ``fpm_store``: compares the potentially-
    corrupted value/address with the pristine ones and updates the shadow
    hash table, including the dual contamination effect of corrupted store
    addresses (Sec. 3.2, "Store addresses").
    """

    __slots__ = ("value", "value_p", "addr", "addr_p", "taint")

    opcode = "fpm_store"

    def __init__(self, value: Value, value_p: Value, addr: Value, addr_p: Value) -> None:
        super().__init__(None)
        self.value = value
        self.value_p = value_p
        self.addr = addr
        self.addr_p = addr_p
        #: True when created by the taintchain pass: value_p is a taint bit.
        self.taint = False

    def operands(self) -> Tuple[Value, ...]:
        return (self.value, self.value_p, self.addr, self.addr_p)

    def replace_operands(self, mapping) -> None:
        self.value = mapping(self.value)
        self.value_p = mapping(self.value_p)
        self.addr = mapping(self.addr)
        self.addr_p = mapping(self.addr_p)


def result_type(op: str, lhs: Type, rhs: Type) -> Type:
    """Result type of a binary opcode applied to operand types.

    Raises :class:`~repro.errors.IRError` on an invalid combination; the
    verifier and the builder both funnel through this single rule table.
    """
    if op in INT_BINOPS:
        if lhs is INT and rhs is INT:
            return INT
        raise IRError(f"{op} requires int operands, got {lhs}, {rhs}")
    if op in FLOAT_BINOPS:
        if lhs is FLOAT and rhs is FLOAT:
            return FLOAT
        raise IRError(f"{op} requires float operands, got {lhs}, {rhs}")
    if op in PTR_BINOPS:
        if lhs is PTR and rhs is INT:
            return PTR
        raise IRError(f"{op} requires (ptr, int) operands, got {lhs}, {rhs}")
    raise IRError(f"unknown binary opcode {op!r}")
