"""Setuptools shim.

The execution environment is offline and has no `wheel` package, so the
PEP-517 editable build (which needs bdist_wheel) cannot run; this shim
enables the legacy `setup.py develop` editable install path.
"""

from setuptools import setup

setup()
