"""Ablations beyond the paper's figures.

* **Injection-site kinds** — the paper injects into arithmetic registers;
  this ablation adds pointer-arithmetic and load/store sites and shows
  the crash share rising (corrupted addresses segfault), quantifying why
  the site mix matters when comparing fault-injection studies.
* **Instrumentation overhead** — the FPM dual-chain roughly doubles the
  instruction stream; the benchmark measures the actual cycle overhead of
  the instrumented builds (the runtime cost a real FPM deployment pays).
* **mem2reg sensitivity** — without scalar promotion every temporary
  lives in memory, inflating both the injectable-site space and the
  contamination census.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import get_app
from repro.core.runner import build_program, run_job
from repro.frontend import compile_source
from repro.inject import run_campaign
from repro.passes import run_passes
from repro.vm import compile_program

from conftest import save_artifact, trials, workers, SEED


def test_ablation_site_kinds(benchmark, results_dir):
    kinds_variants = [
        ("arith",),
        ("arith", "ptr"),
        ("arith", "ptr", "mem"),
    ]

    def run_all():
        rows = {}
        for kinds in kinds_variants:
            # vary inject kinds through a parameterised app config
            from repro.apps.registry import AppSpec
            spec = get_app("mcb")
            cfg = spec.config.with_(inject_kinds=kinds)
            import repro.apps.registry as reg
            name = f"mcb_kinds_{'_'.join(kinds)}"
            if name not in reg.APP_BUILDERS:
                patched = AppSpec(
                    name=name, source=spec.source, config=cfg,
                    tolerance=spec.tolerance,
                    abs_tolerance=spec.abs_tolerance,
                    description=spec.description, params=dict(spec.params),
                )
                reg.register_app(name)(lambda _s=patched: _s)
            c = run_campaign(name, trials=max(40, trials() // 3),
                             mode="blackbox", seed=SEED, workers=workers())
            rows[kinds] = c.fractions()
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = render_table(
        ["site kinds", "CO", "WO", "PEX", "C"],
        [["+".join(k)] + [f"{100 * fr[c]:.1f}%" for c in ("CO", "WO", "PEX", "C")]
         for k, fr in rows.items()],
    )
    table += "\n\nadding address sites must raise the crash share"
    save_artifact(results_dir, "ablation_site_kinds.txt", table)

    crash = {k: fr["C"] for k, fr in rows.items()}
    assert crash[("arith", "ptr")] >= crash[("arith",)]
    assert crash[("arith", "ptr", "mem")] >= crash[("arith",)]


def test_instrumentation_overhead(benchmark, results_dir):
    apps = ("lulesh", "minife", "mcb")

    def measure():
        rows = []
        for app in apps:
            spec = get_app(app)
            bb = build_program(spec.source, "blackbox", config=spec.config)
            fpm = build_program(spec.source, "fpm", config=spec.config)
            r_bb = run_job(bb, spec.config)
            r_fpm = run_job(fpm, spec.config)
            assert not r_bb.crashed and not r_fpm.crashed
            rows.append((app, r_bb.cycles, r_fpm.cycles,
                         r_fpm.cycles / r_bb.cycles))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = render_table(
        ["app", "black-box cycles", "FPM cycles", "overhead"],
        [[a, b, f, f"{x:.2f}x"] for a, b, f, x in rows],
    )
    save_artifact(results_dir, "instrumentation_overhead.txt", table)

    for app, bb_cycles, fpm_cycles, factor in rows:
        # dual chain replicates arithmetic: expect ~1.3-2.5x
        assert 1.2 < factor < 3.0, (app, factor)


def test_mem2reg_sensitivity(benchmark, results_dir):
    """Scalar promotion decides what counts as *memory state*.

    Without mem2reg every scalar temporary lives in a stack slot, so it
    joins the CML census and widens the contamination surface — the same
    reason LLFI results depend on the optimisation level of the binary.
    """
    from repro.vm import FaultSpec

    spec = get_app("mcb")

    def measure():
        out = {}
        for label, pipeline in (
            ("with mem2reg",
             ["mem2reg", "dce", "faultinject", "dualchain"]),
            ("without mem2reg", ["faultinject", "dualchain"]),
        ):
            mod = compile_source(spec.source, "mcb")
            run_passes(mod, pipeline)
            prog = compile_program(mod)
            golden = run_job(prog, spec.config)
            assert not golden.crashed and not golden.any_contaminated
            live = golden.trace.live_words[-1]
            contaminated = peak_sum = 0
            n_probe = 40
            total = golden.inj_counts[0]
            for k in range(n_probe):
                occ = 1 + (k * total) // n_probe
                res = run_job(prog, spec.config,
                              faults=[FaultSpec(0, occ, bit=44)])
                if res.crashed:
                    continue
                if res.any_contaminated:
                    contaminated += 1
                    peak_sum += res.trace.peak_cml
            out[label] = dict(
                cycles=golden.cycles,
                live_words=live,
                contaminated=contaminated,
                mean_peak=peak_sum / max(contaminated, 1),
            )
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = render_table(
        ["pipeline", "golden cycles", "live memory words",
         "contaminating probes", "mean peak CML"],
        [[k, v["cycles"], v["live_words"], v["contaminated"],
          f"{v['mean_peak']:.1f}"] for k, v in out.items()],
    )
    table += (
        "\n\nwithout promotion, scalar temporaries live in memory: "
        "a larger state census\nand a wider contamination surface "
        "(LLFI results depend on optimisation level)"
    )
    save_artifact(results_dir, "ablation_mem2reg.txt", table)

    with_p = out["with mem2reg"]
    without = out["without mem2reg"]
    # -O0-style builds carry scalar slots as live memory state
    assert without["live_words"] > with_p["live_words"]
    # and expose at least as much contamination per probe set
    assert without["contaminated"] >= with_p["contaminated"] - 2
