"""Fig. 7: fault propagation profiles CML(t) per application.

For each app, render representative propagation profiles (the paper
plots two per outcome class where possible) and the maximum contaminated
memory fraction (Fig. 7f).  Shape assertions: profiles rise after the
injection and saturate or keep growing; the Fig. 7f ordering puts LAMMPS
among the largest contaminated fractions (reflecting Fig. 7d, where over
half the memory state is contaminated within the run) and shows that even
"correct" runs carry substantial contamination.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    contamination_stats,
    render_downsampled_profile,
    render_series,
    render_table,
)
from repro.apps import PAPER_APPS

from conftest import save_artifact


def _pick_profiles(campaign, per_class=2):
    chosen = {}
    for t in campaign.trials:
        if t.times is None or t.peak_cml < 3:
            continue
        chosen.setdefault(t.outcome, [])
        if len(chosen[t.outcome]) < per_class:
            chosen[t.outcome].append(t)
    return chosen


def test_fig7_profiles(benchmark, campaigns, results_dir):
    def run_all():
        return {app: campaigns.get(app, "fpm") for app in PAPER_APPS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sections = []
    stats_rows = []
    for app, campaign in results.items():
        profiles = _pick_profiles(campaign)
        sections.append(f"--- {app} " + "-" * 40)
        for outcome, trials_ in sorted(profiles.items()):
            for t in trials_:
                pts = list(zip(t.times.tolist(), t.cml.tolist()))
                sections.append(f"[{app} / {outcome}] peak={t.peak_cml} "
                                f"({100 * t.peak_cml_fraction:.1f}% of state)")
                sections.append(render_series(pts))
        st = contamination_stats(app, campaign.trials)
        stats_rows.append([
            app,
            f"{100 * st.max_peak_fraction:.1f}%",
            f"{100 * st.mean_peak_fraction:.1f}%",
            f"{100 * st.p90:.1f}%",
        ])

    fig7f = render_table(
        ["app", "max peak contamination", "mean", "p90"], stats_rows
    )
    text = "\n".join(sections) + "\n\nFig. 7f — contaminated memory state:\n" + fig7f
    save_artifact(results_dir, "fig7_profiles.txt", text)

    # --- shape assertions
    for app, campaign in results.items():
        contaminated = [t for t in campaign.trials if t.ever_contaminated]
        assert contaminated, f"{app}: no contaminated trials at all"
        # profiles rise: peak >= final for every trial, some trial reaches
        # a two-digit CML
        assert max(t.peak_cml for t in contaminated) >= 10, app
        # no contamination before the fault fires
        for t in contaminated:
            if t.times is None or not t.injected_cycles:
                continue
            onset = min(t.injected_cycles)
            assert t.cml[t.times < onset].sum() == 0, app

    # Fig. 7f: substantial contamination is reachable — some app exceeds
    # 25 % of its memory state (the paper's LULESH observation)
    peaks = {app: contamination_stats(app, c.trials).max_peak_fraction
             for app, c in results.items()}
    assert max(peaks.values()) > 0.25
    # LAMMPS: "within 100 time steps, more than half of the memory state
    # becomes contaminated" — our analog must reach a large fraction too
    assert peaks["lammps"] > 0.2

    # LAMMPS lower profile: trials whose contamination stays at a couple
    # of words for the whole run (the unused static table, Fig. 7d)
    lammps = results["lammps"]
    flat = [t for t in lammps.trials
            if t.ever_contaminated and 0 < t.peak_cml <= 2
            and t.outcome in ("ONA", "V", "WO", "PEX")]
    assert flat, "no flat lower-profile trials (static-table hits)"
