"""Extension: evaluating the paper's roll-back decision policy.

Paper Sec. 5: the FPS-based CML estimate "can be used to decide, at
runtime, if a roll-back should be triggered ... the fault-tolerance
system could decide to keep the application running if the CML at the end
of the application is predicted to be below a safe threshold."

This benchmark plays fault-injection campaigns through the
checkpoint/roll-back runner under three policies and scores them on the
two axes the paper cares about: how many runs finish with corrupted state
(risk) and how many cycles are re-executed (cost).  The FPS-threshold
policy must sit between always-roll-back (max cost, min risk) and
never-roll-back (min cost, max risk).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.apps import get_app
from repro.core.runner import build_program, run_job
from repro.inject.plan import draw_plan
from repro.models import CMLEstimator, compute_fps
from repro.resilience import (
    AlwaysRollback,
    FPSThresholdPolicy,
    NeverRollback,
    ResilientRunner,
)
from repro.inject import run_campaign

from conftest import SEED, save_artifact, trials, workers


def test_rollback_policies(benchmark, results_dir):
    app = "mcb"
    n = max(30, trials() // 5)

    def run_study():
        spec = get_app(app)
        program = build_program(spec.source, "fpm", config=spec.config)
        golden = run_job(program, spec.config)

        # FPS model from a training campaign (as the paper prescribes)
        training = run_campaign(app, trials=max(60, n), mode="fpm",
                                seed=SEED + 1, workers=workers(),
                                keep_series=True)
        estimator = CMLEstimator(compute_fps(app, training.trials))

        interval = max(4000, golden.cycles // 8)
        # The paper's policy predicts the CML at the END of the run; the
        # threshold tolerates up to a quarter-run's worth of propagation,
        # so late-detected faults run through and early ones roll back.
        threshold = estimator.fps.fps * golden.cycles * 0.25
        policies = [
            AlwaysRollback(),
            NeverRollback(),
            FPSThresholdPolicy(estimator, threshold),
        ]

        rng = np.random.default_rng(SEED)
        plans = [draw_plan(rng, golden.inj_counts, 1) for _ in range(n)]

        scores = {}
        for policy in policies:
            contaminated_finishes = crashes = rollbacks = 0
            wasted = 0
            for i, plan in enumerate(plans):
                runner = ResilientRunner(program, spec.config, policy,
                                         interval=interval,
                                         expected_end=golden.cycles)
                res = runner.run(faults=plan, inj_seed=i)
                if res.crashed:
                    crashes += 1
                    continue
                if res.final_contaminated:
                    contaminated_finishes += 1
                rollbacks += res.rollbacks
                wasted += res.wasted_cycles
            scores[policy.name] = dict(
                dirty=contaminated_finishes,
                crashes=crashes,
                rollbacks=rollbacks,
                wasted=wasted,
            )
        return golden, scores

    golden, scores = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = [
        [name, s["dirty"], s["crashes"], s["rollbacks"],
         f"{s['wasted'] / max(golden.cycles, 1):.2f} runs-worth"]
        for name, s in scores.items()
    ]
    text = render_table(
        ["policy", "contaminated finishes", "crashes", "rollbacks",
         "re-executed work"],
        rows,
    )
    text += (
        "\n\npaper Sec. 5: roll back when the estimated CML exceeds a safe "
        "threshold;\nthe FPS-threshold policy buys most of always-rollback's "
        "safety at reduced cost"
    )
    save_artifact(results_dir, "rollback_policies.txt", text)

    always = scores["always"]
    never = scores["never"]
    fps_pol = scores["fps-threshold"]
    # roll-backs eliminate contaminated finishes relative to running through
    assert always["dirty"] <= never["dirty"]
    assert never["wasted"] == 0
    # the threshold policy pays at most always-rollback's cost and sits
    # between the extremes on risk
    assert always["wasted"] >= fps_pol["wasted"]
    assert always["rollbacks"] >= fps_pol["rollbacks"]
    assert always["dirty"] <= fps_pol["dirty"] <= never["dirty"]
