"""Table 2: fault propagation speed (FPS) factors.

Paper values (CML/second on their AMD Interlagos testbed):

    App.   LULESH   LAMMPS   MCB     AMG2013  miniFE
    FPS    0.0147   0.0025   0.0562  0.0144   0.0035

Our unit is CML/cycle on the simulated machine — absolute numbers are not
comparable, but the paper's *ordering* and its headline observation must
hold: MCB propagates fastest; LULESH and AMG sit together in the middle;
LAMMPS and miniFE — the apps with the *worst* Fig. 6 output vulnerability
— have the *lowest* propagation speeds.  "FPS is a more precise way to
assess the intrinsic vulnerability of an application."
"""

from __future__ import annotations

from repro.analysis import render_fps_table
from repro.apps import PAPER_APPS
from repro.models import compute_fps

from conftest import save_artifact

PAPER_FPS = {
    "lulesh": 0.0147,
    "lammps": 0.0025,
    "mcb": 0.0562,
    "amg": 0.0144,
    "minife": 0.0035,
}


def test_table2_fps(benchmark, campaigns, results_dir):
    def run_all():
        out = {}
        for app in PAPER_APPS:
            campaign = campaigns.get(app, "fpm")
            out[app] = compute_fps(app, campaign.trials)
        return out

    fps = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = render_fps_table([fps[a] for a in PAPER_APPS])
    order_ours = sorted(PAPER_FPS, key=lambda a: -fps[a].fps)
    order_paper = sorted(PAPER_FPS, key=lambda a: -PAPER_FPS[a])
    table += (
        f"\n\nordering (ours):  {' > '.join(order_ours)}"
        f"\nordering (paper): {' > '.join(order_paper)}"
        f"\npaper values (CML/sec): {PAPER_FPS}"
    )
    save_artifact(results_dir, "table2_fps.txt", table)

    values = {a: r.fps for a, r in fps.items()}
    ordered = sorted(values, key=values.get)
    # The paper's headline inversion, robust at our scale: LAMMPS — the
    # most output-vulnerable app of Fig. 6 — is the *slowest* propagator.
    assert ordered[0] == "lammps"
    assert values["lammps"] < 0.5 * min(
        v for a, v in values.items() if a != "lammps"
    )
    # MCB sits in the top group (it trades the paper's clear #1 with AMG
    # at our campaign sizes; see EXPERIMENTS.md for the variance analysis)
    assert ordered.index("mcb") >= 2
    # there is real spread across the suite, as in the paper (20x there)
    assert max(values.values()) / min(values.values()) > 3.0
    # LULESH and AMG sit within an order of magnitude of each other
    # (paper: 0.0147 vs 0.0144)
    ratio = values["lulesh"] / values["amg"]
    assert 0.1 < ratio < 10.0
    # every FPS is positive with enough fitted profiles behind it
    for app, r in fps.items():
        assert r.fps > 0 and r.n_trials >= 10, app
