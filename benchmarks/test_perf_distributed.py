"""Distributed fabric scaling: the remote executor's 1/2/4/8-shard ladder.

Two sections, two different questions:

**Fabric concurrency (gated).**  How well does the controller/worker
fabric overlap trial *latency*?  Synthetic trials with a fixed wall
latency each (``REPRO_BENCH_TRIAL_LATENCY``, default 50 ms) run through
the real engine + RemoteExecutor at 1/2/4/8 shards.  Latency-bound
trials parallelise regardless of host core count — what the ladder
measures is the fabric itself: dispatch, socket streaming, shard
bookkeeping.  The gate: 4 shards must cut wall clock at least 2x vs
1 shard.  An overhead row (per-trial fabric cost at 1 shard vs a bare
serial loop) is recorded alongside.

**Real-app equivalence (gated) + timings (advisory).**  A real ``amg``
FPM campaign runs serially and at 2/4 remote shards; every trial pair
must be bit-identical and the merged shard journals must hash equal to
the serial journal (``journal_science_hash``).  Wall clocks are
recorded but not asserted — on a single-core host CPU-bound trials
cannot speed up, and on shared CI runners absolute timings are noise.

Results land in ``benchmarks/results/BENCH_distributed.json``.
Scale with REPRO_BENCH_TRIALS / REPRO_BENCH_REPS /
REPRO_BENCH_TRIAL_LATENCY.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.inject import CampaignEngine, run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import TrialResult, _env_int
from repro.inject.journal import journal_science_hash

from conftest import RESULTS_DIR, SEED

SHARD_LADDER = (1, 2, 4, 8)


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 24)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _trial_latency() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_TRIAL_LATENCY", "0.05"))
    except ValueError:
        return 0.05


def _latency_trial(job):
    """A trial that costs pure wall latency (think: remote I/O wait)."""
    index, latency = job
    time.sleep(latency)
    return TrialResult(
        outcome="CO", trap_kind=None, faults=(), injected_cycles=(),
        injected_occurrences=(), iterations=1, cycles=index,
    )


def _fabric_run(n, shards, latency):
    jobs = [(i, latency) for i in range(n)]
    eng = CampaignEngine(workers=1, executor="remote", shards=shards,
                         task_fn=_latency_trial)
    t0 = time.perf_counter()
    results, health = eng.run(jobs)
    wall = time.perf_counter() - t0
    assert [r.cycles for r in results] == list(range(n))
    assert health.executor == "remote" and health.shards == shards
    assert not health.quarantined
    return wall


def _serial_run(n, latency):
    jobs = [(i, latency) for i in range(n)]
    eng = CampaignEngine(workers=1, executor="serial",
                         task_fn=_latency_trial)
    t0 = time.perf_counter()
    results, _ = eng.run(jobs)
    return time.perf_counter() - t0


def test_fabric_shard_ladder():
    n, reps, latency = _bench_trials(), _bench_reps(), _trial_latency()
    _fabric_run(n, 1, latency)  # untimed warm-up (imports, fork caches)

    rows = []
    medians = {}
    for shards in SHARD_LADDER:
        walls = [_fabric_run(n, shards, latency) for _ in range(reps)]
        medians[shards] = statistics.median(walls)
        rows.append({
            "shards": shards,
            "wall_s": [round(w, 3) for w in walls],
            "median_wall_s": round(medians[shards], 3),
        })
    for row in rows:
        row["speedup_vs_1_shard"] = round(
            medians[1] / max(row["median_wall_s"], 1e-9), 2)

    serial_wall = statistics.median(
        [_serial_run(n, latency) for _ in range(reps)])
    ideal = n * latency
    payload = {
        "benchmark": "distributed_fabric",
        "n_trials": n,
        "reps": reps,
        "trial_latency_s": latency,
        "ideal_serial_wall_s": round(ideal, 3),
        "bare_serial_wall_s": round(serial_wall, 3),
        "ladder": rows,
        "speedup_4_over_1": rows[2]["speedup_vs_1_shard"],
        "reached_2x_at_4_shards": rows[2]["speedup_vs_1_shard"] >= 2.0,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_distributed.json"
    existing = json.loads(out.read_text()) if out.exists() else {}
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\nfabric ladder ({n} trials x {latency * 1000:.0f} ms):")
    for row in rows:
        print(f"  {row['shards']} shard(s): {row['median_wall_s']:.3f}s "
              f"({row['speedup_vs_1_shard']}x)")
    # the gate: the fabric must actually overlap trial latency
    assert rows[2]["speedup_vs_1_shard"] >= 2.0, \
        f"4-shard speedup {rows[2]['speedup_vs_1_shard']}x < 2x"


def test_real_app_equivalence_across_shards(tmp_path):
    app, n = os.environ.get("REPRO_BENCH_APP", "amg"), _bench_trials()
    art = tmp_path / "artifacts"

    def _run(executor, shards, journal):
        campaign_mod._PREPARED_CACHE.clear()
        t0 = time.perf_counter()
        r = run_campaign(app, n, mode="fpm", seed=SEED, executor=executor,
                         shards=shards, artifact_dir=art, journal=journal)
        return r, time.perf_counter() - t0

    ref, ref_wall = _run("serial", None, tmp_path / "serial.jsonl")
    ref_hash = journal_science_hash(tmp_path / "serial.jsonl")
    rows = [{"executor": "serial", "shards": 1,
             "wall_s": round(ref_wall, 3)}]
    for shards in (2, 4):
        journal = tmp_path / f"remote{shards}.jsonl"
        c, wall = _run("remote", shards, journal)
        for i, (a, b) in enumerate(zip(c.trials, ref.trials)):
            assert trial_results_equal(a, b), i    # gating: bit-identity
        assert journal_science_hash(journal) == ref_hash
        rows.append({"executor": "remote", "shards": shards,
                     "wall_s": round(wall, 3),
                     "journal_hash_matches_serial": True})

    out = RESULTS_DIR / "BENCH_distributed.json"
    existing = json.loads(out.read_text()) if out.exists() else {}
    existing.update({"real_app": app, "real_app_trials": n,
                     "real_app_rows": rows})
    out.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"\n{app} equivalence: serial vs remote x2/x4 bit-identical, "
          f"journal hashes equal")
