"""Shared campaign infrastructure for the figure/table benchmarks.

Campaigns are expensive, so they run once per session per (app, mode) and
are shared by every benchmark that needs them.  Trial count comes from
REPRO_TRIALS (default 150) and process parallelism from REPRO_WORKERS
(default: up to 4); both are validated by the campaign layer, and
campaigns run on the supervised engine (watchdog via
REPRO_TRIAL_TIMEOUT, crashed-worker recovery, quarantine).  Rendered
tables/figures are written to ``benchmarks/results/`` so EXPERIMENTS.md
can cite them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.inject import run_campaign
from repro.inject.campaign import _env_int
from repro.vm.snapshot import default_snapshot_stride

RESULTS_DIR = Path(__file__).parent / "results"


def trials() -> int:
    return _env_int("REPRO_TRIALS", 150)


def workers() -> int:
    return _env_int("REPRO_WORKERS", min(4, os.cpu_count() or 1))


SEED = 20150715  # SC '15 era


class CampaignCache:
    def __init__(self) -> None:
        self._cache = {}
        self.timings: list[dict] = []

    def get(self, app: str, mode: str, seed: int = SEED, **kw):
        key = (app, mode, seed, tuple(sorted(kw.items())))
        if key not in self._cache:
            t0 = time.perf_counter()
            result = run_campaign(
                app,
                trials=trials(),
                mode=mode,
                seed=seed,
                workers=workers(),
                keep_series=(mode == "fpm"),
                **kw,
            )
            wall = time.perf_counter() - t0
            self._cache[key] = result
            self.timings.append({
                "app": app,
                "mode": mode,
                "seed": seed,
                "trials": result.n_trials,
                "wall_s": round(wall, 3),
                "trials_per_s": round(result.n_trials / max(wall, 1e-9), 2),
                "kwargs": {k: v for k, v in sorted(kw.items())},
            })
        return self._cache[key]


@pytest.fixture(scope="session")
def campaigns() -> CampaignCache:
    cache = CampaignCache()
    yield cache
    # Per-run campaign throughput, recorded so tentpole perf changes show
    # up in the committed artifacts (compare against older checkouts).
    if cache.timings:
        RESULTS_DIR.mkdir(exist_ok=True)
        payload = {
            "benchmark": "campaigns",
            "trials_env": trials(),
            "workers": workers(),
            "snapshot_stride": default_snapshot_stride(),
            "runs": cache.timings,
        }
        (RESULTS_DIR / "BENCH_campaigns.json").write_text(
            json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
