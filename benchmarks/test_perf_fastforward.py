"""Per-trial speedup of snapshot fast-forward + fused dispatch.

"Before" is the PR-1 interpreter: unfused closures, every trial replayed
from cycle 0.  "After" is the default configuration: fused straight-line
segments plus golden-run snapshots, so each trial restores the latest
snapshot predating its armed fault and executes only the tail.

The only *gating* assertions are equivalence: every fast-forwarded trial
must be bit-identical to its cold counterpart.  The measured speedups
are recorded to ``benchmarks/results/BENCH_snapshot_fastforward.json``
for EXPERIMENTS.md and the CI perf-smoke job; the committed artifact was
produced with REPRO_BENCH_TRIALS=40 on an idle machine.

Scale with REPRO_BENCH_APP (default amg — the paper app with the
largest crash+PEX share, i.e. the most early-terminating tails) and
REPRO_BENCH_TRIALS.
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np

from repro.apps import get_app
from repro.core.runner import run_job
from repro.inject.campaign import _env_int
from repro.inject.plan import draw_plan
from repro.inject.profiler import PreparedApp

from conftest import SEED


def _bench_app() -> str:
    return os.environ.get("REPRO_BENCH_APP", "amg")


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 40)


def _nansafe(x):
    # repr round-trips finite floats exactly; NaN payloads all render
    # "nan", which is the equality the campaign layer uses as well
    return repr(x)


def _assert_jobs_identical(a, b):
    assert a.status == b.status
    assert str(a.trap) == str(b.trap)
    assert a.cycles == b.cycles
    assert a.rank_cycles == b.rank_cycles
    assert _nansafe(a.outputs) == _nansafe(b.outputs)
    assert a.iterations == b.iterations
    assert a.inj_counts == b.inj_counts
    assert [[vars(e) for e in r] for r in a.injections] == \
           [[vars(e) for e in r] for r in b.injections]
    assert (a.trace is None) == (b.trace is None)
    if a.trace is not None:
        assert a.trace.times == b.trace.times
        assert _nansafe(a.trace.cml_per_rank) == _nansafe(b.trace.cml_per_rank)
        assert a.trace.first_contamination == b.trace.first_contamination


def _measure(app: str, mode: str, n: int) -> dict:
    spec = get_app(app)
    cold_pa = PreparedApp(spec, mode, snapshot_stride=0, fuse=False)
    fast_pa = PreparedApp(spec, mode)  # default stride/limit, fused
    config = fast_pa.run_config()
    rng = np.random.default_rng(SEED)

    speedups = []
    cold_wall = fast_wall = 0.0
    hits = 0
    for _ in range(n):
        faults = draw_plan(rng, fast_pa.golden.inj_counts, 1)
        seed = int(rng.integers(2 ** 31))

        t0 = time.perf_counter()
        cold = run_job(cold_pa.program, cold_pa.run_config(), faults,
                       inj_seed=seed)
        t1 = time.perf_counter()
        snap = fast_pa.snapshots.best_for(faults) \
            if fast_pa.snapshots is not None else None
        if snap is not None:
            hits += 1
        fast = run_job(fast_pa.program, config, faults, inj_seed=seed,
                       restore_from=snap)
        t2 = time.perf_counter()

        _assert_jobs_identical(cold, fast)
        cold_wall += t1 - t0
        fast_wall += t2 - t1
        speedups.append((t1 - t0) / max(t2 - t1, 1e-9))

    speedups.sort()
    q = statistics.quantiles(speedups, n=4) if len(speedups) >= 2 else \
        [speedups[0]] * 3
    store = fast_pa.snapshots
    return {
        "mode": mode,
        "trials": n,
        "golden_cycles": fast_pa.golden.cycles,
        "snapshot_stride": store.stride if store is not None else 0,
        "snapshots": len(store) if store is not None else 0,
        "snapshot_hits": hits,
        "cold_wall_s": round(cold_wall, 3),
        "fast_wall_s": round(fast_wall, 3),
        "speedup_overall": round(cold_wall / max(fast_wall, 1e-9), 2),
        "speedup_median": round(statistics.median(speedups), 2),
        "speedup_p25": round(q[0], 2),
        "speedup_p75": round(q[2], 2),
        "speedup_min": round(speedups[0], 2),
        "speedup_max": round(speedups[-1], 2),
        "equivalent": True,  # every trial above passed _assert_jobs_identical
    }


def test_perf_snapshot_fastforward(results_dir):
    app = _bench_app()
    n = _bench_trials()
    payload = {
        "benchmark": "snapshot_fastforward",
        "app": app,
        "seed": SEED,
        "baseline": "unfused dispatch, no snapshots (cold replay)",
        "candidate": "fused dispatch + snapshot fast-forward (defaults)",
        "modes": [_measure(app, mode, n) for mode in ("blackbox", "fpm")],
    }
    path = results_dir / "BENCH_snapshot_fastforward.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")
