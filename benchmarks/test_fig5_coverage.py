"""Fig. 5: fault injection coverage.

The paper verifies (via chi-square) that faults land uniformly over the
execution of LULESH: "the actual distribution of injected faults closely
matches the ideal uniform distribution".  The benchmark bins the
injection times — each normalised by its *own rank's* golden clock, since
rank clocks advance at different rates — and reproduces the chi-square
test, plus the same test on the dynamic-occurrence axis (the "program
points" LLFI counts).
"""

from __future__ import annotations

from repro.analysis import coverage_histogram, render_histogram

from conftest import save_artifact


def _normalised_times(campaign):
    """Injection cycle / that rank's golden cycle count, in [0, ~1]."""
    out = []
    for t in campaign.trials:
        if not t.injected_cycles:
            continue
        rank = t.faults[0].rank
        denom = campaign.golden_rank_cycles[rank]
        out.append(min(t.injected_cycles[0] / denom, 1.0))
    return out


def _normalised_occurrences(campaign):
    out = []
    for t in campaign.trials:
        if not t.injected_occurrences:
            continue
        rank = t.faults[0].rank
        out.append(t.injected_occurrences[0] / campaign.inj_counts[rank])
    return out


def test_fig5_coverage(benchmark, campaigns, results_dir):
    # pool two campaigns with independent seeds (the FPM campaign shares
    # its plans with the black-box one by design, so pooling those two
    # would double-count identical samples)
    from conftest import SEED
    pool = [campaigns.get("lulesh", "fpm"),
            campaigns.get("lulesh", "blackbox", seed=SEED + 101)]

    def analyse():
        times, occs = [], []
        for campaign in pool:
            times.extend(_normalised_times(campaign))
            occs.extend(_normalised_occurrences(campaign))
        # paper uses 500 bins for 5,000 injections (10 per bin); keep the
        # same density at our trial count
        n_bins = max(5, len(times) // 10)
        rep_t = coverage_histogram(times, n_bins=n_bins, t_max=1.0)
        rep_o = coverage_histogram(occs, n_bins=n_bins, t_max=1.0)
        return times, rep_t, rep_o

    times, rep_t, rep_o = benchmark.pedantic(analyse, rounds=1, iterations=1)

    text = (
        f"injections: {rep_t.n_samples}   bins: {rep_t.n_bins}   "
        f"expected/bin: {rep_t.expected:.1f}\n"
        f"time axis:        chi2 = {rep_t.chi2:8.2f}   p = {rep_t.p_value:.4f}"
        f"   uniform (p>0.05): {rep_t.uniform}\n"
        f"occurrence axis:  chi2 = {rep_o.chi2:8.2f}   p = {rep_o.p_value:.4f}"
        f"   uniform (p>0.05): {rep_o.uniform}\n\n"
        + render_histogram(rep_t.counts, width=50)
    )
    save_artifact(results_dir, "fig5_coverage.txt", text)

    assert rep_t.n_samples >= 0.9 * sum(c.n_trials for c in pool)
    # Occurrences are drawn uniformly by construction and injection times
    # are a near-linear map of them; the chi-square must not show gross
    # skew (a pointed threshold would flake ~3% of seeds even for truly
    # uniform draws — see the uniformity unit tests for the sharp checks).
    assert rep_o.p_value > 1e-4
    assert rep_t.p_value > 1e-4
    # binned counts stay within a sane factor of the expectation
    assert rep_t.counts.max() < 4 * rep_t.expected
