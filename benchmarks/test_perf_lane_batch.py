"""Lane-batched execution: per-trial ladder across lane window widths.

"Before" is the PR 8 configuration: every trial in a fork bucket
COW-forks the worker's shared golden cursor at its injection epoch and
pays its own armed-mode prefix replay from the fork point to the
injection instruction.  "After" batches a *window* of same-bucket
trials on the lane tier: the shared stream is advanced once per window,
pausing at each trial's occurrence cut, so the armed prefix between the
fork epoch and the cuts is executed once and amortised across the
window — each paused world is stacked into a ``(lanes, words)`` NumPy
row and restored with one bulk slice copy per plane.

The win is therefore concentrated where the armed prefix dominates the
trial: short-window trials (divergent window ≤ 1/8 of the golden run)
whose cut sits deep into the bucket's epoch.  Long-window trials are
tail-dominated on both tiers and land near 1x.  Measurements:

* equivalence — the hard gate: every lane width must be trial-for-trial
  bit-identical to the scalar paths on every rep;
* width ladder — per-trial (engine ``execute`` stage clocks, min across
  reps) and campaign-wall ratios at widths 1 (scalar fork tier), 2, 4
  and 8;
* honesty — whether the amg short-window median reached 2x over the
  PR 8 fork tier and 10x over the PR 5 restore/replay baseline is
  *recorded*, gap included, not asserted; the hard assertions are
  equivalence, lane occupancy, and a no-regression floor against PR 8;
* occupancy — the ``repro_lane_{enters,retirements,reconverged}_total``
  counters from an observed run, so the report shows how much of the
  campaign actually rode the lane tier.

Results land in ``benchmarks/results/BENCH_lane_batch.json`` and are
folded into the trajectory by ``benchmarks/collect.py``.  Scale with
REPRO_BENCH_TRIALS (default 30) and REPRO_BENCH_REPS (default 3).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int
from repro.obs import ObserveConfig

from conftest import SEED

GATED_APP = "amg"

#: lane window widths; 1 = lane tier off (PR 8 scalar fork tier)
LANE_LADDER = (1, 2, 4, 8)

#: campaign-level no-regression floor vs the PR 8 fork tier: lane
#: batching may never cost more than measurement noise
NO_REGRESSION_FLOOR = 0.80

#: the issue's targets, recorded honestly (gap included), not asserted
TARGET_VS_PR8 = 2.0
TARGET_VS_PR5 = 10.0

#: a trial is "short-window" when its divergent window — fork cycle to
#: end (or prune splice) — is at most this fraction of the golden run
SHORT_WINDOW_FRACTION = 1 / 8


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 30)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(app, n, *, fork=True, lanes=None, observe=None):
    campaign_mod._PREPARED_CACHE.clear()
    t0 = time.perf_counter()
    result = run_campaign(app, n, mode="fpm", seed=SEED, fork=fork,
                          lanes=lanes, observe=observe)
    return result, time.perf_counter() - t0


def _execute_times(result):
    return [t.stage_timings.get("execute", 0.0) for t in result.trials]


def _positioning_total(result, stages):
    """Total world-positioning cost across the campaign's trials."""
    return sum(t.stage_timings.get(s, 0.0)
               for t in result.trials for s in stages)


def _window_cycles(trial, golden_cycles):
    if trial.forked_at_cycle is None:
        return golden_cycles
    end = trial.pruned_at_cycle if trial.pruned_at_cycle is not None \
        else trial.cycles
    return max(0, end - trial.forked_at_cycle)


def _median(values):
    return round(statistics.median(values), 2) if values else None


def _counter(result, name):
    series = (result.metrics or {}).get("counters", {}).get(name, [])
    return int(sum(value for _, value in series))


def _measure(app, n, reps):
    # untimed warm-up: bytecode caches + golden profile/artifacts
    _run(app, n, fork=False)

    widths = [w for w in LANE_LADDER if w >= 2]
    pr5_t = [float("inf")] * n
    pr8_t = [float("inf")] * n
    lane_t = {w: [float("inf")] * n for w in widths}
    pr5_walls, pr8_walls = [], []
    lane_walls = {w: [] for w in widths}
    pr8_pos, lane_pos = [], {w: [] for w in widths}
    candidate = None
    for _ in range(reps):
        pr5, w5 = _run(app, n, fork=False)
        pr8, w8 = _run(app, n, lanes=0)
        pr5_walls.append(w5)
        pr8_walls.append(w8)
        pr8_pos.append(_positioning_total(pr8, ("fork_advance",)))
        pr5_t = [min(p, q) for p, q in zip(pr5_t, _execute_times(pr5))]
        pr8_t = [min(p, q) for p, q in zip(pr8_t, _execute_times(pr8))]
        for i, (a, b) in enumerate(zip(pr5.trials, pr8.trials)):
            assert trial_results_equal(a, b), (app, "pr8", i, a, b)
        for w in widths:
            cand, cw = _run(app, n, lanes=w)
            lane_walls[w].append(cw)
            lane_pos[w].append(_positioning_total(
                cand, ("lane_advance", "fork_advance")))
            lane_t[w] = [min(p, q)
                         for p, q in zip(lane_t[w], _execute_times(cand))]
            # gating: lane batching must be invisible in the science
            assert cand.fractions() == pr5.fractions()
            for i, (a, b) in enumerate(zip(pr5.trials, cand.trials)):
                assert trial_results_equal(a, b), (app, w, i, a, b)
            if w == widths[-1]:
                candidate = cand

    golden_cycles = candidate.golden_cycles
    laned = [i for i, t in enumerate(candidate.trials)
             if t.lane is not None]
    assert laned, f"{app}: no trial ever ran on the lane tier"
    short = [i for i in laned
             if _window_cycles(candidate.trials[i], golden_cycles)
             <= golden_cycles * SHORT_WINDOW_FRACTION]

    ladder = {}
    for w in widths:
        vs_pr8 = [pr8_t[i] / max(lane_t[w][i], 1e-9) for i in laned]
        vs_pr8_short = [pr8_t[i] / max(lane_t[w][i], 1e-9) for i in short]
        vs_pr5_short = [pr5_t[i] / max(lane_t[w][i], 1e-9) for i in short]
        ladder[str(w)] = {
            "per_trial_vs_pr8_median": _median(vs_pr8),
            "short_window_vs_pr8_median": _median(vs_pr8_short),
            "short_window_vs_pr5_median": _median(vs_pr5_short),
            "campaign_wall_s": [round(x, 3) for x in lane_walls[w]],
            "campaign_ratio_vs_pr8_median": _median(
                [b / max(c, 1e-9)
                 for b, c in zip(pr8_walls, lane_walls[w])]),
            # positioning is not hidden: the shared advance + capture
            # each tier pays outside its per-trial execute clock
            "positioning_total_s": round(min(lane_pos[w]), 3),
        }
    # width 1 row: the lane tier disabled is the PR 8 path by definition
    ladder["1"] = {
        "per_trial_vs_pr8_median": 1.0,
        "short_window_vs_pr8_median": 1.0,
        "short_window_vs_pr5_median": _median(
            [pr5_t[i] / max(pr8_t[i], 1e-9) for i in short]),
        "campaign_wall_s": [round(x, 3) for x in pr8_walls],
        "campaign_ratio_vs_pr8_median": 1.0,
        "positioning_total_s": round(min(pr8_pos), 3),
    }

    best_w = max(widths,
                 key=lambda w: ladder[str(w)]["short_window_vs_pr8_median"]
                 or 0.0)
    best = ladder[str(best_w)]

    # lane-occupancy breakdown from one observed run (untimed)
    campaign_mod._PREPARED_CACHE.clear()
    observed, _ = _run(app, n, lanes=best_w,
                       observe=ObserveConfig(events=False, cml=False))
    occupancy = {
        "width": best_w,
        "repro_lane_enters_total": _counter(
            observed, "repro_lane_enters_total"),
        "repro_lane_retirements_total": _counter(
            observed, "repro_lane_retirements_total"),
        "repro_lane_reconverged_total": _counter(
            observed, "repro_lane_reconverged_total"),
        "lane_trials": observed.health.lane_trials,
        "forked_trials": observed.health.forked_trials,
        "lane_fraction": round(observed.health.lane_trials / n, 3),
    }

    vs_pr8 = best["short_window_vs_pr8_median"]
    vs_pr5 = best["short_window_vs_pr5_median"]
    return {
        "trials": n,
        "golden_cycles": golden_cycles,
        "laned_trials": len(laned),
        "short_window_trials": len(short),
        "pr5_wall_s": [round(x, 3) for x in pr5_walls],
        "lane_ladder": ladder,
        "best_width": best_w,
        "short_window_vs_pr8_median": vs_pr8,
        "short_window_vs_pr5_median": vs_pr5,
        "reached_2x_over_pr8": vs_pr8 is not None and vs_pr8 >= TARGET_VS_PR8,
        "gap_to_2x_over_pr8": (None if vs_pr8 is None
                               else round(max(0.0, TARGET_VS_PR8 - vs_pr8),
                                          2)),
        "reached_10x_target": vs_pr5 is not None and vs_pr5 >= TARGET_VS_PR5,
        "gap_to_10x_target": (None if vs_pr5 is None
                              else round(max(0.0, TARGET_VS_PR5 - vs_pr5),
                                         2)),
        "lane_occupancy": occupancy,
        "equivalent": True,
    }


def test_perf_lane_batch(results_dir, monkeypatch):
    monkeypatch.delenv("REPRO_FORK_TRIALS", raising=False)
    monkeypatch.delenv("REPRO_LANES", raising=False)
    monkeypatch.delenv("REPRO_PRUNE", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    n = _bench_trials()
    reps = _bench_reps()
    row = _measure(GATED_APP, n, reps)
    payload = {
        "benchmark": "lane_batch",
        "seed": SEED,
        "trials": n,
        "reps": reps,
        "baseline_pr5": "restore/warm clone + armed prefix replay per "
                        "trial (fork=False)",
        "baseline_pr8": "fork-at-injection + tier-2 traces, scalar "
                        "per-trial armed replay (lanes=0)",
        "candidate": "lane-batched windows over stacked NumPy world "
                     "buffers (lanes=2/4/8)",
        "short_window_fraction": round(SHORT_WINDOW_FRACTION, 4),
        "apps": {GATED_APP: row},
        "headline": {
            "gated_app": GATED_APP,
            "best_width": row["best_width"],
            "short_window_vs_pr8_median":
                row["short_window_vs_pr8_median"],
            "short_window_vs_pr5_median":
                row["short_window_vs_pr5_median"],
            "target_vs_pr8": TARGET_VS_PR8,
            "target_vs_pr5": TARGET_VS_PR5,
            "reached_2x_over_pr8": row["reached_2x_over_pr8"],
            "reached_10x_target": row["reached_10x_target"],
            "gap_to_2x_over_pr8": row["gap_to_2x_over_pr8"],
            "gap_to_10x_target": row["gap_to_10x_target"],
            "lane_occupancy": row["lane_occupancy"],
            "note": "stretch targets recorded honestly, not asserted: "
                    "the amortisable cost is the armed prefix between "
                    "the fork epoch and the occurrence cuts, so the "
                    "measured win tracks how deep the drawn cuts sit "
                    "in their buckets",
        },
    }
    path = results_dir / "BENCH_lane_batch.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    # hard gates: bit-identity held (asserted per rep above), the lane
    # tier actually carried trials, and it never loses to PR 8 beyond
    # noise at any width
    assert row["laned_trials"] > 0
    occ = row["lane_occupancy"]
    assert occ["repro_lane_enters_total"] == occ["lane_trials"] > 0
    for w in LANE_LADDER:
        entry = row["lane_ladder"][str(w)]
        assert entry["campaign_ratio_vs_pr8_median"] >= \
            NO_REGRESSION_FLOOR, (w, entry)
        assert entry["per_trial_vs_pr8_median"] >= NO_REGRESSION_FLOOR, \
            (w, entry)
