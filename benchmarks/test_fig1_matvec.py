"""Fig. 1: fault propagation in iterative Matrix-Vector multiplication.

Reproduces the paper's exact worked example: the A[3][3] bit-2 flip
(6 -> 2) contaminates 25 % of the 24-word memory state after two
iterations and 37.5 % after three, with 100 % of the output vector b
corrupted.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps.matvec import matvec_source
from repro.core.config import RunConfig
from repro.core.runner import build_program
from repro.vm import FaultSpec, Machine, MachineStatus

from conftest import save_artifact

STATE_WORDS = 24  # A (16) + x (4) + b (4)


def _build():
    config = RunConfig(nranks=1, quantum=16, inject_kinds=("arith", "mem"))
    return build_program(matvec_source(3), "fpm", config=config)


def _find_a33_occurrence(program) -> int:
    probe = Machine(program)
    probe.start()
    while probe.run(10 ** 5) is MachineStatus.READY:
        pass
    for occ in range(1, probe.inj_counter + 1):
        m = Machine(program)
        m.arm_faults([FaultSpec(0, occ, bit=2, operand=0)])
        m.start()
        while m.run(10 ** 5) is MachineStatus.READY:
            pass
        if m.injection_events:
            ev = m.injection_events[0]
            if ev.before == 6 and ev.after == 2 and \
                    "fpm_store" in program.site_table[ev.site][2]:
                return occ
    raise AssertionError("A[3][3] initialisation store not found")


def _profile(program, occ):
    m = Machine(program)
    m.arm_faults([FaultSpec(0, occ, bit=2, operand=0)])
    m.start()
    per_iter = {}
    last = -1
    while m.run(16) is MachineStatus.READY:
        if m.iteration_count != last:
            last = m.iteration_count
            per_iter[last] = m.cml
    per_iter[m.iteration_count] = m.cml
    return m, per_iter


def test_fig1_matvec(benchmark, results_dir):
    program = _build()

    def run():
        occ = _find_a33_occurrence(program)
        return _profile(program, occ)

    machine, per_iter = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [it, cml, f"{100 * cml / STATE_WORDS:.1f}%"]
        for it, cml in sorted(per_iter.items())
    ]
    table = render_table(["iteration", "CML", "% of state"], rows)
    table += (
        f"\n\nfaulty output b3 = {machine.outputs}"
        f"\npaper expects    [1760, 1964, 2256, 1086]"
        f"\npaper: 25% after 2 iterations, 37.5% after 3"
    )
    save_artifact(results_dir, "fig1_matvec.txt", table)

    assert per_iter[2] == 6                  # 25 % of 24
    assert per_iter[3] == 9                  # 37.5 % of 24
    assert machine.outputs == [1760, 1964, 2256, 1086]
