"""Sec. 4.3: the black-box/propagation contradiction.

The paper's headline: output-variation analysis calls >90 % of LULESH
runs "correct", but FPM shows most of those carry contaminated memory
state — "most cases (over 98%) identified as CO present corrupted memory
states".  The benchmark computes the CO -> V/ONA breakdown per app and
asserts ONA dominance in the aggregate (our mini-apps have more genuinely
masked faults than 1000-core codes; EXPERIMENTS.md discusses the delta).
"""

from __future__ import annotations

from repro.analysis import co_breakdown, render_table
from repro.apps import PAPER_APPS

from conftest import save_artifact


def test_sec43_co_breakdown(benchmark, campaigns, results_dir):
    def run_all():
        return {app: campaigns.get(app, "fpm") for app in PAPER_APPS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    breakdowns = {}
    for app, campaign in results.items():
        bd = co_breakdown(app, campaign.outcomes())
        breakdowns[app] = bd
        rows.append([
            app, bd.n_co, bd.n_vanished, bd.n_ona,
            f"{100 * bd.ona_share:.1f}%",
        ])
    text = render_table(
        ["app", "CO runs", "Vanished", "ONA", "ONA share of CO"], rows
    )
    total_co = sum(b.n_co for b in breakdowns.values())
    total_ona = sum(b.n_ona for b in breakdowns.values())
    text += (
        f"\n\naggregate: {total_ona}/{total_co} CO runs "
        f"({100 * total_ona / total_co:.1f}%) have contaminated memory\n"
        "paper: over 98% of CO runs present corrupted memory state"
    )
    save_artifact(results_dir, "sec43_co_breakdown.txt", text)

    # The qualitative contradiction: a large share of "correct" runs are
    # actually contaminated, for every app and in aggregate.
    assert total_ona / total_co > 0.4
    for app, bd in breakdowns.items():
        assert bd.n_co > 0, f"{app}: no CO runs"
        assert bd.ona_share > 0.25, f"{app}: contamination in CO too rare"
    # majority contamination in the aggregate
    assert total_ona >= total_co - total_ona
