"""Fig. 6: outcome of fault injection with a single fault per run.

Black-box (output-variation) classification per application.  The shape
assertions encode the paper's qualitative findings:

* LULESH looks robust — high CO, very few WO (its internal energy check
  aborts instead);
* LAMMPS has the largest WO share of the suite;
* miniFE shows a visible PEX share (CG pays for faults with iterations);
* crashes exist for every app but dominate nowhere.
"""

from __future__ import annotations

from repro.analysis import crash_kind_histogram, render_outcome_table
from repro.apps import PAPER_APPS

from conftest import save_artifact


def test_fig6_outcomes(benchmark, campaigns, results_dir):
    def run_all():
        return {app: campaigns.get(app, "blackbox") for app in PAPER_APPS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fractions = {app: c.fractions() for app, c in results.items()}

    text = render_outcome_table(fractions, blackbox=True)
    crash_lines = []
    for app, c in results.items():
        hist = crash_kind_histogram(c.trials)
        crash_lines.append(f"{app}: {hist}")
    text += "\n\ncrash causes:\n" + "\n".join(crash_lines)
    text += (
        "\n\npaper shape: LULESH CO>90% with WO<5%; LAMMPS most WO; "
        "miniFE visible PEX; crashes mainly from corrupted addresses"
    )
    save_artifact(results_dir, "fig6_outcomes.txt", text)

    fr = fractions
    # LULESH: robust-looking under black-box analysis
    assert fr["lulesh"]["CO"] > 0.55
    assert fr["lulesh"]["WO"] < 0.15
    # LULESH has the highest CO share of the suite (paper ordering)
    assert fr["lulesh"]["CO"] >= max(f["CO"] for f in fr.values()) - 0.1
    # LAMMPS: largest WO share
    assert fr["lammps"]["WO"] == max(f["WO"] for f in fr.values())
    # miniFE: PEX present
    assert fr["minife"]["PEX"] > 0.02
    # every app crashes sometimes, none crashes in the majority of runs
    for app in PAPER_APPS:
        assert fr[app]["C"] < 0.5
    # memory faults are the leading crash cause overall (paper Sec. 4.2)
    total_hist = {}
    for c in results.values():
        for k, v in crash_kind_histogram(c.trials).items():
            total_hist[k] = total_hist.get(k, 0) + v
    if total_hist:
        leading = max(total_hist, key=total_hist.get)
        assert leading in ("mem_fault", "abort", "arith")
