"""Convergence pruning: per-trial speedup ladder + campaign wall clock.

"Before" is the PR 4 configuration: every trial executes to its final
cycle even after its corrupted state has healed back to the golden
trajectory.  "After" is the default PR 5 configuration: the scheduler
compares the trial's world digest against the golden fingerprint index
at each stride epoch (once all faults have fired and the shadow tables
are empty) and splices the golden finals onto re-converged trials.

The gating assertions are:

* equivalence — pruned and unpruned campaigns must be trial-for-trial
  bit-identical (the hard gate, meaningful on any hardware);
* per-trial speedup — the median wall-clock ratio over *pruned* trials
  must reach 1.5x on at least two applications (pruned trials skip the
  bulk of their execution, so this holds with a wide margin even on
  noisy shared runners);
* no regression — the median campaign-level wall ratio must not drop
  below the noise floor (unpruned trials pay only a scalar
  quick-signature check per stride epoch).

Per-trial times are the campaign engine's own ``execute`` stage clocks,
taken as the min across reps (adjacent interleaved runs see similar
host conditions).  Results land in
``benchmarks/results/BENCH_convergence_pruning.json`` with one pruned
fraction + sorted speedup ladder per app.  Scale with REPRO_BENCH_TRIALS
(default 30) and REPRO_BENCH_REPS (default 3).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int

from conftest import SEED

#: the paper's two scale apps with the largest golden trajectories —
#: where healed trials have the most tail left to skip
APPS = ("amg", "minife")

#: campaign-level no-regression floor: pruning may never cost more than
#: measurement noise on an unpruned workload
NO_REGRESSION_FLOOR = 0.80

#: acceptance gate: median per-trial speedup over pruned trials
PRUNED_SPEEDUP_GATE = 1.5


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 30)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(app, n, prune):
    campaign_mod._PREPARED_CACHE.clear()
    t0 = time.perf_counter()
    result = run_campaign(app, n, mode="fpm", seed=SEED, workers=1,
                          prune=prune)
    return result, time.perf_counter() - t0


def _execute_times(result):
    return [t.stage_timings.get("execute", 0.0) for t in result.trials]


def _measure_app(app, n, reps):
    # untimed warm-up: bytecode caches + golden profile for both paths
    _run(app, n, False)

    base_walls, cand_walls = [], []
    base_exec = [float("inf")] * n
    cand_exec = [float("inf")] * n
    candidate = None
    for _ in range(reps):
        base, bw = _run(app, n, False)
        cand, cw = _run(app, n, True)
        # gating: pruning must be invisible in the science
        assert base.n_trials == cand.n_trials == n
        assert base.fractions() == cand.fractions()
        for i, (a, b) in enumerate(zip(base.trials, cand.trials)):
            assert trial_results_equal(a, b), (app, i, a, b)
            assert a.pruned_at_cycle is None
        base_walls.append(bw)
        cand_walls.append(cw)
        base_exec = [min(p, q) for p, q in zip(base_exec, _execute_times(base))]
        cand_exec = [min(p, q) for p, q in zip(cand_exec, _execute_times(cand))]
        candidate = cand

    pruned = [i for i, t in enumerate(candidate.trials)
              if t.pruned_at_cycle is not None]
    ladder = sorted(
        round(base_exec[i] / max(cand_exec[i], 1e-9), 2) for i in pruned)
    wall_ratios = [b / max(c, 1e-9)
                   for b, c in zip(base_walls, cand_walls)]
    row = {
        "trials": n,
        "pruned_trials": len(pruned),
        "pruned_fraction": round(len(pruned) / n, 3),
        "pruned_cycles": candidate.health.pruned_cycles,
        "pruned_outcomes": sorted({candidate.trials[i].outcome
                                   for i in pruned}),
        "speedup_ladder": ladder,
        "pruned_speedup_median": (round(statistics.median(ladder), 2)
                                  if ladder else None),
        "baseline_wall_s": [round(w, 3) for w in base_walls],
        "candidate_wall_s": [round(w, 3) for w in cand_walls],
        "campaign_ratio_median": round(statistics.median(wall_ratios), 2),
        "equivalent": True,
    }
    return row


def test_perf_convergence_pruning(results_dir, monkeypatch):
    monkeypatch.delenv("REPRO_PRUNE", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    n = _bench_trials()
    reps = _bench_reps()
    payload = {
        "benchmark": "convergence_pruning",
        "seed": SEED,
        "trials": n,
        "reps": reps,
        "baseline": "PR 4: every trial runs to its final cycle "
                    "(prune=False)",
        "candidate": "golden-trajectory convergence pruning: digest "
                     "match at stride epochs splices golden finals "
                     "(defaults)",
        "apps": {app: _measure_app(app, n, reps) for app in APPS},
    }
    gate_hits = [app for app, row in payload["apps"].items()
                 if row["pruned_speedup_median"] is not None
                 and row["pruned_speedup_median"] >= PRUNED_SPEEDUP_GATE]
    payload["headline"] = {
        "apps_meeting_pruned_speedup_gate": gate_hits,
        "gate": PRUNED_SPEEDUP_GATE,
    }
    path = results_dir / "BENCH_convergence_pruning.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    for app, row in payload["apps"].items():
        # the corpus must actually exercise splicing on both apps
        assert row["pruned_trials"] > 0, f"{app}: nothing pruned"
        # masked outcomes only — a pruned world was bit-identical to
        # golden, so it cannot have crashed or produced wrong output
        assert set(row["pruned_outcomes"]) <= {"V", "ONA", "CO"}, row
        # no-regression: pruning never costs more than noise
        assert row["campaign_ratio_median"] >= NO_REGRESSION_FLOOR, (app, row)
    assert len(gate_hits) >= 2, payload["apps"]
