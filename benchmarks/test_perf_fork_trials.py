"""Fork-at-injection: per-trial speedup ladder + worker-scaling walls.

"Before" is the PR 5 configuration: every trial resets the world with a
dirty-delta restore (or warm clone), replays the armed prefix from its
snapshot to the injection cycle, then runs the divergent tail.  "After"
is the default configuration: one shared golden world per worker is
advanced through the campaign's epoch buckets exactly once, and each
trial forks it copy-on-write at its injection epoch — so a trial pays
only its divergent window plus the pages it touches.

Both paths run the *identical* post-injection tail, so the structural
win concentrates in trials whose divergent window is short (crash or
prune soon after injection): there the restore path's fixed costs —
world reset plus armed-mode prefix replay — dominate, and forking
removes them.  Long-window trials are tail-dominated in both paths and
land near 1x.  The gating assertions reflect that split:

* equivalence — fork and no-fork campaigns must be trial-for-trial
  bit-identical on every rep (the hard gate, meaningful anywhere);
* per-trial speedup — the median wall-clock ratio over *short-window*
  trials (window ≤ 1/8 of the golden run) must reach 3x on amg, the
  gate the CI perf-smoke job enforces at reduced trial count;
* no regression — the median campaign-level wall ratio must not drop
  below the noise floor on any app.

Per-trial times are the engine's own ``execute`` stage clocks, taken
as the min across reps — the same accounting the pruning benchmark
uses.  The baseline's execute includes its armed-mode prefix replay
from the snapshot to the injection cycle; the fork path executes the
divergent window alone.  Shared positioning costs are not hidden:
each path's world-reset totals (``snapshot_restore + clone`` vs
``fork_advance``) are reported per app, and the campaign walls and the
1/2/4/8-worker ladder measure everything end to end.  Results land in
``benchmarks/results/BENCH_fork_trials.json``; whether the
short-window median reached the 10x target is recorded there
honestly.  Scale with REPRO_BENCH_TRIALS (default 30) and
REPRO_BENCH_REPS (default 3).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int

from conftest import SEED

#: amg is the gated app (the issue's target); minife rides along for a
#: second ladder on the other paper-scale golden trajectory
APPS = ("amg", "minife")
GATED_APP = "amg"

#: campaign-level no-regression floor: forking may never cost more than
#: measurement noise on a tail-dominated workload
NO_REGRESSION_FLOOR = 0.80

#: acceptance gate: median per-trial speedup over short-window trials
#: (the same bar the CI perf-smoke job runs at reduced trial count)
FORK_SPEEDUP_GATE = 3.0

#: the issue's stretch target, recorded (not gated) per app
TARGET_SPEEDUP = 10.0

#: a trial is "short-window" when its divergent window — fork cycle to
#: end (or prune splice) — is at most this fraction of the golden run
SHORT_WINDOW_FRACTION = 1 / 8

#: worker widths for the campaign wall ladder
WORKER_LADDER = (1, 2, 4, 8)


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 30)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(app, n, fork, workers=1):
    campaign_mod._PREPARED_CACHE.clear()
    t0 = time.perf_counter()
    result = run_campaign(app, n, mode="fpm", seed=SEED, workers=workers,
                          fork=fork)
    return result, time.perf_counter() - t0


def _execute_times(result):
    return [t.stage_timings.get("execute", 0.0) for t in result.trials]


def _reset_total(result, stages):
    """Total world-positioning cost across the campaign's trials."""
    return sum(t.stage_timings.get(s, 0.0)
               for t in result.trials for s in stages)


def _window_cycles(trial, golden_cycles):
    """Divergent window actually executed by the forked trial."""
    if trial.forked_at_cycle is None:
        return golden_cycles
    end = trial.pruned_at_cycle if trial.pruned_at_cycle is not None \
        else trial.cycles
    return max(0, end - trial.forked_at_cycle)


def _measure_app(app, n, reps):
    # untimed warm-up: bytecode caches + golden profile for both paths
    _run(app, n, False)

    base_walls, cand_walls = [], []
    base_reset, cand_reset = [], []
    base_t = [float("inf")] * n
    cand_t = [float("inf")] * n
    candidate = None
    for _ in range(reps):
        base, bw = _run(app, n, False)
        cand, cw = _run(app, n, True)
        # gating: forking must be invisible in the science
        assert base.n_trials == cand.n_trials == n
        assert base.fractions() == cand.fractions()
        for i, (a, b) in enumerate(zip(base.trials, cand.trials)):
            assert trial_results_equal(a, b), (app, i, a, b)
            assert a.forked_at_cycle is None
        base_walls.append(bw)
        cand_walls.append(cw)
        base_reset.append(_reset_total(base, ("snapshot_restore", "clone")))
        cand_reset.append(_reset_total(cand, ("fork_advance",)))
        base_t = [min(p, q) for p, q in zip(base_t, _execute_times(base))]
        cand_t = [min(p, q) for p, q in zip(cand_t, _execute_times(cand))]
        candidate = cand

    golden_cycles = candidate.golden_cycles
    forked = [i for i, t in enumerate(candidate.trials)
              if t.forked_at_cycle is not None]
    ratios = {i: base_t[i] / max(cand_t[i], 1e-9) for i in forked}
    short = [i for i in forked
             if _window_cycles(candidate.trials[i], golden_cycles)
             <= golden_cycles * SHORT_WINDOW_FRACTION]
    ladder = sorted(round(ratios[i], 2) for i in forked)
    short_ladder = sorted(round(ratios[i], 2) for i in short)
    wall_ratios = [b / max(c, 1e-9)
                   for b, c in zip(base_walls, cand_walls)]
    row = {
        "trials": n,
        "golden_cycles": golden_cycles,
        "forked_trials": len(forked),
        "forked_fraction": round(len(forked) / n, 3),
        "pages_copied": candidate.health.pages_copied,
        "speedup_ladder": ladder,
        "speedup_median": (round(statistics.median(ladder), 2)
                           if ladder else None),
        "short_window_trials": len(short),
        "short_window_ladder": short_ladder,
        "short_window_speedup_median": (
            round(statistics.median(short_ladder), 2)
            if short_ladder else None),
        "best_trial_speedup": ladder[-1] if ladder else None,
        "reached_10x_target": bool(short_ladder) and
        statistics.median(short_ladder) >= TARGET_SPEEDUP,
        # world-positioning totals each path pays outside execute
        "baseline_reset_total_s": round(min(base_reset), 3),
        "fork_advance_total_s": round(min(cand_reset), 3),
        "baseline_wall_s": [round(w, 3) for w in base_walls],
        "candidate_wall_s": [round(w, 3) for w in cand_walls],
        "campaign_ratio_median": round(statistics.median(wall_ratios), 2),
        "equivalent": True,
    }
    return row


def _worker_ladder(app, n):
    """Campaign walls across pool widths, both paths, one rep each."""
    ladder = {}
    for w in WORKER_LADDER:
        base, bw = _run(app, n, False, workers=w)
        cand, cw = _run(app, n, True, workers=w)
        for a, b in zip(base.trials, cand.trials):
            assert trial_results_equal(a, b), (app, w)
        ladder[str(w)] = {
            "no_fork_wall_s": round(bw, 3),
            "fork_wall_s": round(cw, 3),
            "ratio": round(bw / max(cw, 1e-9), 2),
        }
    return ladder


def test_perf_fork_trials(results_dir, monkeypatch):
    monkeypatch.delenv("REPRO_FORK_TRIALS", raising=False)
    monkeypatch.delenv("REPRO_PRUNE", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    n = _bench_trials()
    reps = _bench_reps()
    payload = {
        "benchmark": "fork_trials",
        "seed": SEED,
        "trials": n,
        "reps": reps,
        "baseline": "PR 5: dirty-delta restore/warm clone + armed "
                    "prefix replay per trial (fork=False)",
        "candidate": "fork-at-injection: shared golden cursor + COW "
                     "fork per trial (defaults)",
        "short_window_fraction": round(SHORT_WINDOW_FRACTION, 4),
        "apps": {app: _measure_app(app, n, reps) for app in APPS},
        "worker_ladder": {GATED_APP: _worker_ladder(GATED_APP, n)},
    }
    gated = payload["apps"][GATED_APP]
    payload["headline"] = {
        "gated_app": GATED_APP,
        "short_window_speedup_median":
            gated["short_window_speedup_median"],
        "gate": FORK_SPEEDUP_GATE,
        "target": TARGET_SPEEDUP,
        "reached_10x_target": gated["reached_10x_target"],
    }
    path = results_dir / "BENCH_fork_trials.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    for app, row in payload["apps"].items():
        assert row["forked_trials"] > 0, f"{app}: nothing ever forked"
        assert row["campaign_ratio_median"] >= NO_REGRESSION_FLOOR, (app, row)
    assert gated["short_window_trials"] > 0, gated
    assert gated["short_window_speedup_median"] >= FORK_SPEEDUP_GATE, gated
