"""Sec. 5 / Eqs. 1-3: propagation model accuracy and the CML estimator.

The paper fits CML(t) = a t + b per experiment and reports model errors
"within 0.5% of the actual CML values"; the estimator (Eq. 3) bounds the
corrupted state within a detection window.  The benchmark fits every
retained profile, validates the fits, and exercises the estimator's
roll-back decision on real campaign data.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.models import (
    CMLEstimator,
    compute_fps,
    evaluate_fit,
    fit_profile,
)

from conftest import save_artifact


def test_model_accuracy(benchmark, campaigns, results_dir):
    campaign = campaigns.get("mcb", "fpm")

    def fit_all():
        reports = []
        for t in campaign.trials:
            if t.times is None or t.peak_cml < 5 or not t.injected_cycles:
                continue
            onset = min(t.injected_cycles)
            keep = t.times >= onset
            tt = t.times[keep].astype(float)
            yy = t.cml[keep].astype(float)
            if tt.size < 8 or yy.mean() == 0:
                continue
            fit = fit_profile(tt, yy)
            reports.append(evaluate_fit(fit.predict, tt, yy))
        return reports

    reports = benchmark.pedantic(fit_all, rounds=1, iterations=1)
    assert len(reports) >= 10, "too few fitted profiles"

    nmaes = np.array([r.nmae for r in reports])
    r2s = np.array([r.r2 for r in reports])

    fps = compute_fps("mcb", campaign.trials)
    est = CMLEstimator(fps)
    window = est.estimate_window(0, campaign.golden_cycles)

    rows = [
        ["profiles fitted", len(reports)],
        ["median NMAE", f"{np.median(nmaes):.4f}"],
        ["p90 NMAE", f"{np.percentile(nmaes, 90):.4f}"],
        ["median R^2", f"{np.median(r2s):.4f}"],
        ["FPS (CML/cycle)", f"{fps.fps:.3e}"],
        ["max CML over full run (Eq. 3)", f"{window.max_cml:.1f}"],
        ["avg CML over full run", f"{window.avg_cml:.1f}"],
    ]
    text = render_table(["metric", "value"], rows)
    text += "\npaper: model errors within 0.5% of actual CML values"
    save_artifact(results_dir, "model_accuracy.txt", text)

    # The piece-wise model family explains the measured profiles well.
    assert np.median(r2s) > 0.8
    assert np.median(nmaes) < 0.25
    # The best quartile approaches the paper's sub-percent accuracy class
    # (their profiles were smooth 1000-rank aggregates; ours are 4-rank
    # and steppy, so per-trial errors are dominated by discreteness).
    assert np.percentile(nmaes, 25) < 0.10
    assert (nmaes < 0.08).sum() >= 3

    # Eq. 3 sanity: the full-window bound dominates every observed peak.
    peaks = [t.peak_cml for t in campaign.trials if t.peak_cml > 0]
    assert window.max_cml >= np.median(peaks)

    # Roll-back logic: a tight threshold triggers, a loose one doesn't.
    assert window.rollback_advised(threshold=1.0)
    assert not window.rollback_advised(threshold=10 * window.max_cml)
