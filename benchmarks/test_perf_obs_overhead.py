"""Cost of the observability layer on a traced campaign.

Runs the same campaign unobserved and fully observed (trace + metrics +
live CML streams) and compares wall time.  Two gates:

* **equivalence** — every observed trial must be bit-identical to its
  unobserved counterpart (the layer's core contract);
* **overhead** — the best-of-reps traced wall time must stay within
  10% of the unobserved one (the no-op-emitter design target).

Results land in ``benchmarks/results/BENCH_obs_overhead.json``.  Scale
with REPRO_BENCH_APP / REPRO_BENCH_TRIALS / REPRO_BENCH_REPS.
"""

from __future__ import annotations

import json
import os
import time

from repro.inject.campaign import _env_int, run_campaign, trial_results_equal
from repro.obs import ObserveConfig, parse_prometheus, read_trace

from conftest import SEED

#: gating ceiling on (traced - plain) / plain, best-of-reps
MAX_OVERHEAD = 0.10


def _bench_app() -> str:
    return os.environ.get("REPRO_BENCH_APP", "amg")


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 40)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(app: str, n: int, observe=None):
    t0 = time.perf_counter()
    result = run_campaign(app, trials=n, mode="fpm", seed=SEED,
                          workers=1, observe=observe)
    return time.perf_counter() - t0, result


def test_perf_obs_overhead(results_dir, tmp_path):
    app = _bench_app()
    n = _bench_trials()
    reps = _bench_reps()

    # warm-up: golden profiling + snapshot capture happen once and are
    # cached, so neither measured configuration pays them
    _run(app, n)

    plain_walls, obs_walls = [], []
    plain_result = obs_result = None
    for rep in range(reps):
        wall, plain_result = _run(app, n)
        plain_walls.append(wall)
        cfg = ObserveConfig(
            trace=str(tmp_path / f"trace-{rep}.jsonl"),
            metrics_out=str(tmp_path / f"metrics-{rep}.prom"),
        )
        wall, obs_result = _run(app, n, observe=cfg)
        obs_walls.append(wall)

    # equivalence gate: observation changed nothing
    for i, (a, b) in enumerate(zip(plain_result.trials, obs_result.trials)):
        assert trial_results_equal(a, b), f"trial {i} diverged under observe"

    # the emitted artifacts are well-formed
    _, records = read_trace(cfg.trace)
    assert len(records) >= n
    samples = parse_prometheus(open(cfg.metrics_out).read())
    assert sum(samples["repro_trials_total"].values()) == n

    plain_best, obs_best = min(plain_walls), min(obs_walls)
    overhead = (obs_best - plain_best) / plain_best
    payload = {
        "benchmark": "obs_overhead",
        "app": app,
        "trials": n,
        "reps": reps,
        "seed": SEED,
        "plain_wall_s": [round(w, 3) for w in plain_walls],
        "observed_wall_s": [round(w, 3) for w in obs_walls],
        "plain_best_s": round(plain_best, 3),
        "observed_best_s": round(obs_best, 3),
        "overhead_fraction": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "trace_records": len(records),
        "equivalent": True,  # every pair above passed trial_results_equal
    }
    path = results_dir / "BENCH_obs_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    # overhead gate: tracing must stay in the noise of trial execution
    assert overhead < MAX_OVERHEAD, (
        f"traced campaign {overhead:.1%} slower than unobserved "
        f"(limit {MAX_OVERHEAD:.0%})"
    )
