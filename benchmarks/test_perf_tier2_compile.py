"""Tier-2 golden-trace compilation: per-trial ladders + honest gates.

Three configurations frame the measurement:

* **PR 5 baseline** — ``fork=False, tier2=False``: every trial resets
  the world (dirty-delta restore / warm clone) and replays its armed
  prefix through fused tier-1 dispatch.  This is the reference the
  issue's 10x target is stated against.
* **PR 7 baseline** — ``tier2=False`` (fork on): trials COW-fork off
  the shared golden cursor, tier-1 execution.  The fork-trials
  benchmark recorded its short-window median at ~6x over PR 5.
* **Candidate** — defaults (fork + tier-2): the golden cursor advances
  through compiled traces, armed windows bulk-advance their occurrence
  counters through ladder variants, and post-fire tails re-enter
  traces.

Per-trial times are the engine's ``execute`` stage clocks, min across
reps; short-window selection follows the fork benchmark (window ≤ 1/8
of the golden run).  Gating is strictly honest:

* equivalence — all three configurations must be trial-for-trial
  bit-identical on every rep (the hard gate);
* no regression — tier-2 must not lose to its own tier-1 twin beyond
  the noise floor, per-trial and campaign-wall;
* the 10x-over-PR-5 and 2x-over-PR-7 stretch targets are *recorded*
  (``reached_10x_target`` / ``reached_2x_over_fork``), not asserted:
  the fused tier already removed most interpretive overhead, so
  measured tier-2 gain on this suite is ~1.05-1.3x on golden replay —
  the JSON says whether the targets were met rather than pretending.

Also recorded: golden-replay speedup (the regime traces target),
tier-2 codegen cost, trace coverage, and the 1/2/4/8-worker campaign
wall ladder.  Results land in
``benchmarks/results/BENCH_tier2_compile.json``.  Scale with
REPRO_BENCH_TRIALS (default 30) and REPRO_BENCH_REPS (default 3).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.apps import get_app
from repro.core.runner import build_program, run_job
from repro.obs import runtime as obs_rt
from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int
from repro.vm import derive_plan, install_plan

from conftest import SEED

APPS = ("amg", "minife")
GATED_APP = "amg"

#: tier-2 may never lose to its tier-1 twin beyond measurement noise
NO_REGRESSION_FLOOR = 0.80

#: the issue's stretch targets, recorded (not gated) per app
TARGET_SPEEDUP_VS_PR5 = 10.0
TARGET_SPEEDUP_VS_FORK = 2.0

SHORT_WINDOW_FRACTION = 1 / 8
WORKER_LADDER = (1, 2, 4, 8)


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 30)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(app, n, *, fork, tier2, workers=1):
    campaign_mod._PREPARED_CACHE.clear()
    t0 = time.perf_counter()
    result = run_campaign(app, n, mode="fpm", seed=SEED, workers=workers,
                          fork=fork, tier2=tier2)
    return result, time.perf_counter() - t0


def _execute_times(result):
    return [t.stage_timings.get("execute", 0.0) for t in result.trials]


def _window_cycles(trial, golden_cycles):
    if trial.forked_at_cycle is None:
        return golden_cycles
    end = trial.pruned_at_cycle if trial.pruned_at_cycle is not None \
        else trial.cycles
    return max(0, end - trial.forked_at_cycle)


def _golden_replay(app, reps):
    """Fault-free whole-job replay, tier-2 vs tier-1 (best of reps)."""
    spec = get_app(app)
    prog = build_program(spec.source, "fpm", name=spec.name,
                         config=spec.config)
    edges = {}
    run_job(prog, spec.config, capture_edge_profile=edges)
    t0 = time.perf_counter()
    install_plan(prog, derive_plan(prog, edges, spec.config.quantum))
    codegen_s = time.perf_counter() - t0
    t1 = t2 = float("inf")
    for _ in range(reps):
        s = time.perf_counter()
        a = run_job(prog, spec.config)
        t2 = min(t2, time.perf_counter() - s)
        s = time.perf_counter()
        b = run_job(prog, spec.config, tier2=False)
        t1 = min(t1, time.perf_counter() - s)
        assert repr(a.outputs) == repr(b.outputs)
        assert a.cycles == b.cycles
    # tier-transition counters + trace coverage, from one observed run
    with obs_rt.trial_recording() as rec:
        obs = run_job(prog, spec.config)
    counters = {k: v[0][1]
                for k, v in rec.metrics.to_dict()["counters"].items()
                if "tier2" in k}
    # t2 cycles accumulate across every rank: normalise by rank-cycle sum
    coverage = round(
        counters.get("repro_tier2_cycles_total", 0)
        / max(sum(obs.rank_cycles), 1), 3)
    return {
        "tier1_s": round(t1, 4),
        "tier2_s": round(t2, 4),
        "speedup": round(t1 / max(t2, 1e-9), 3),
        "codegen_s": round(codegen_s, 3),
        "counters": counters,
        "trace_cycle_coverage": coverage,
    }


def _measure_app(app, n, reps):
    # untimed warm-up: bytecode caches + golden profile
    _run(app, n, fork=False, tier2=False)

    pr5_t = [float("inf")] * n
    pr7_t = [float("inf")] * n
    cand_t = [float("inf")] * n
    pr7_walls, cand_walls, cand_walls_raw = [], [], []
    candidate = None
    for _ in range(reps):
        pr5, _w5 = _run(app, n, fork=False, tier2=False)
        pr7, w7 = _run(app, n, fork=None, tier2=False)
        cand, wc = _run(app, n, fork=None, tier2=None)
        # gating: tier-2 must be invisible in the science
        assert pr5.n_trials == pr7.n_trials == cand.n_trials == n
        assert pr5.fractions() == pr7.fractions() == cand.fractions()
        for i, (a, b, c) in enumerate(zip(pr5.trials, pr7.trials,
                                          cand.trials)):
            assert trial_results_equal(a, b), (app, i)
            assert trial_results_equal(b, c), (app, i)
        pr5_t = [min(p, q) for p, q in zip(pr5_t, _execute_times(pr5))]
        pr7_t = [min(p, q) for p, q in zip(pr7_t, _execute_times(pr7))]
        cand_t = [min(p, q) for p, q in zip(cand_t, _execute_times(cand))]
        pr7_walls.append(w7)
        # every rep cold-starts (_run clears the prepared cache), so the
        # raw wall re-pays the one-time codegen the artifact plan cache
        # amortises away in production; gate on the amortised wall and
        # record both
        cand_walls_raw.append(wc)
        cand_walls.append(
            wc - cand.health.stage_timings.get("tier2_codegen", 0.0))
        candidate = cand

    golden_cycles = candidate.golden_cycles
    short = [i for i in range(n)
             if _window_cycles(candidate.trials[i], golden_cycles)
             <= golden_cycles * SHORT_WINDOW_FRACTION]
    vs_pr5 = sorted(round(pr5_t[i] / max(cand_t[i], 1e-9), 2)
                    for i in short)
    vs_pr7 = sorted(round(pr7_t[i] / max(cand_t[i], 1e-9), 2)
                    for i in short)
    all_vs_pr7 = [pr7_t[i] / max(cand_t[i], 1e-9) for i in range(n)]
    wall_ratios = [b / max(c, 1e-9)
                   for b, c in zip(pr7_walls, cand_walls)]
    wall_ratios_raw = [b / max(c, 1e-9)
                       for b, c in zip(pr7_walls, cand_walls_raw)]
    med5 = round(statistics.median(vs_pr5), 2) if vs_pr5 else None
    med7 = round(statistics.median(vs_pr7), 2) if vs_pr7 else None
    return {
        "trials": n,
        "golden_cycles": golden_cycles,
        "short_window_trials": len(short),
        "short_window_vs_pr5_ladder": vs_pr5,
        "short_window_vs_pr5_median": med5,
        "short_window_vs_pr7_ladder": vs_pr7,
        "short_window_vs_pr7_median": med7,
        "per_trial_vs_pr7_median": round(
            statistics.median(all_vs_pr7), 2),
        "campaign_ratio_vs_pr7_median": round(
            statistics.median(wall_ratios), 2),
        "campaign_ratio_vs_pr7_median_with_codegen": round(
            statistics.median(wall_ratios_raw), 2),
        "reached_10x_target": med5 is not None
        and med5 >= TARGET_SPEEDUP_VS_PR5,
        "reached_2x_over_fork": med7 is not None
        and med7 >= TARGET_SPEEDUP_VS_FORK,
        "tier2_codegen_s": round(
            candidate.health.stage_timings.get("tier2_codegen", 0.0), 3),
        "golden_replay": _golden_replay(app, max(reps, 3)),
        "equivalent": True,
    }


def _worker_ladder(app, n):
    ladder = {}
    for w in WORKER_LADDER:
        base, bw = _run(app, n, fork=None, tier2=False, workers=w)
        cand, cw = _run(app, n, fork=None, tier2=None, workers=w)
        for a, b in zip(base.trials, cand.trials):
            assert trial_results_equal(a, b), (app, w)
        cg = cand.health.stage_timings.get("tier2_codegen", 0.0)
        ladder[str(w)] = {
            "no_tier2_wall_s": round(bw, 3),
            "tier2_wall_s": round(cw, 3),
            "tier2_codegen_s": round(cg, 3),
            "ratio": round(bw / max(cw - cg, 1e-9), 2),
            "ratio_with_codegen": round(bw / max(cw, 1e-9), 2),
        }
    return ladder


def test_perf_tier2_compile(results_dir, monkeypatch):
    monkeypatch.delenv("REPRO_TIER2", raising=False)
    monkeypatch.delenv("REPRO_TIER2_CAP", raising=False)
    monkeypatch.delenv("REPRO_FORK_TRIALS", raising=False)
    monkeypatch.delenv("REPRO_PRUNE", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    n = _bench_trials()
    reps = _bench_reps()
    payload = {
        "benchmark": "tier2_compile",
        "seed": SEED,
        "trials": n,
        "reps": reps,
        "baseline_pr5": "restore/warm clone + armed prefix replay, "
                        "tier-1 fused dispatch (fork=False, tier2=False)",
        "baseline_pr7": "fork-at-injection, tier-1 fused dispatch "
                        "(tier2=False)",
        "candidate": "fork-at-injection + tier-2 compiled golden "
                     "traces (defaults)",
        "short_window_fraction": round(SHORT_WINDOW_FRACTION, 4),
        "apps": {app: _measure_app(app, n, reps) for app in APPS},
        "worker_ladder": {GATED_APP: _worker_ladder(GATED_APP, n)},
    }
    gated = payload["apps"][GATED_APP]
    payload["headline"] = {
        "gated_app": GATED_APP,
        "short_window_vs_pr5_median":
            gated["short_window_vs_pr5_median"],
        "short_window_vs_pr7_median":
            gated["short_window_vs_pr7_median"],
        "golden_replay_speedup": gated["golden_replay"]["speedup"],
        "target_vs_pr5": TARGET_SPEEDUP_VS_PR5,
        "target_vs_pr7": TARGET_SPEEDUP_VS_FORK,
        "reached_10x_target": gated["reached_10x_target"],
        "reached_2x_over_fork": gated["reached_2x_over_fork"],
        "note": "stretch targets recorded honestly, not asserted: the "
                "fused tier already removed most interpretive "
                "overhead, so tier-2's measured win is concentrated "
                "in fpm inlining + dispatch removal on golden replay",
    }
    path = results_dir / "BENCH_tier2_compile.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    for app, row in payload["apps"].items():
        # hard gates: bit-identity held (asserted above), and tier-2
        # never loses to its tier-1 twin beyond noise
        assert row["per_trial_vs_pr7_median"] >= NO_REGRESSION_FLOOR, (
            app, row)
        assert row["campaign_ratio_vs_pr7_median"] >= NO_REGRESSION_FLOOR, (
            app, row)
        assert row["golden_replay"]["speedup"] >= NO_REGRESSION_FLOOR, (
            app, row)
