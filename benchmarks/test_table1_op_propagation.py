"""Table 1: operation-dependent fault propagation.

The paper's worked examples with a = 19 and its second-least-significant
bit flipped (19 -> 17):

    N  Op           Result  Faulty  Contaminates?
    1  b = a + 5        24      22  Yes
    2  b = 13           13      13  No
    3  b = a >> 1        9       8  Yes
    4  b = a >> 2        4       4  No

The benchmark drives each case through the real dual-chain pipeline and
checks the runtime hash table agrees with the paper's "Cont.?" column.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core.config import RunConfig
from repro.core.runner import build_program, run_job
from repro.vm import FaultSpec, Machine, MachineStatus

from conftest import save_artifact

CASES = [
    ("b = a + 5", "out[0] = a + 5;", 24, 22, True),
    ("b = 13", "out[0] = 13;", 13, 13, False),
    ("b = a >> 1", "out[0] = a >> 1;", 9, 8, True),
    ("b = a >> 2", "out[0] = a >> 2;", 4, 4, False),
]


def _source(stmt: str) -> str:
    return f"""
func main(rank: int, size: int) {{
    var out: int[1];
    var a: int = 19;
    {stmt}
    emiti(out[0]);
}}
"""


def _run_case(stmt: str):
    config = RunConfig(nranks=1, inject_kinds=("arith", "mem"))
    program = build_program(_source(stmt), "fpm", config=config)
    # count occurrences, then flip bit 1 of operand 0 at each site until we
    # corrupt the register holding a (value 19)
    probe = Machine(program)
    probe.start()
    while probe.run(10 ** 5) is MachineStatus.READY:
        pass
    clean_out = probe.outputs[0]
    for occ in range(1, probe.inj_counter + 1):
        m = Machine(program)
        m.arm_faults([FaultSpec(0, occ, bit=1, operand=0)])
        m.start()
        while m.run(10 ** 5) is MachineStatus.READY:
            pass
        if m.injection_events and m.injection_events[0].before == 19:
            return clean_out, m.outputs[0], m.fpm.ever_contaminated
    # no register ever held 19 (the constant-store case)
    return clean_out, clean_out, False


def test_table1(benchmark, results_dir):
    def run_all():
        rows = []
        for name, stmt, want_clean, want_faulty, want_cont in CASES:
            clean, faulty, contaminated = _run_case(stmt)
            rows.append((name, clean, faulty, contaminated,
                         want_clean, want_faulty, want_cont))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = render_table(
        ["Op", "Result (b)", "Faulty (b')", "Cont.?", "paper"],
        [[n, c, f, "Yes" if got else "No", "Yes" if want else "No"]
         for n, c, f, got, wc, wf, want in rows],
    )
    save_artifact(results_dir, "table1_op_propagation.txt", table)

    for name, clean, faulty, cont, want_clean, want_faulty, want_cont in rows:
        assert clean == want_clean, name
        assert faulty == want_faulty, name
        assert cont == want_cont, name
