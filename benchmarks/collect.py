#!/usr/bin/env python
"""Fold every ``benchmarks/results/BENCH_*.json`` into one trajectory.

Each perf PR leaves behind its own ``BENCH_<name>.json`` with its own
shape, which makes the performance story effectively invisible: nobody
reads eight files.  This script folds them into a single
``BENCH_trajectory.json`` with

* one row per benchmark — which PR it landed in, what baseline the
  measurement is against, and the headline median speedup (or overhead
  ratio) extracted from that file's own numbers;
* the amg per-trial chain — the sequence of short-window per-trial
  medians that share the PR 5 baseline (PR 7 fork-at-injection, PR 8
  tier-2 traces), i.e. the honest "speedup vs seed-era trial cost"
  line the 10x target is stated against.

Extraction is defensive: a missing or reshaped file degrades to a row
with ``headline: null`` rather than an error, so the trajectory stays
buildable while individual benchmarks are being reworked.  Run directly
(``python benchmarks/collect.py``) or via the perf-smoke CI job, which
uploads the folded file as an artifact.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parent / "results"
OUT_NAME = "BENCH_trajectory.json"


def _get(d, *path):
    """``d[path[0]][path[1]]...`` with None at the first miss."""
    cur = d
    for key in path:
        if not isinstance(cur, dict) or key not in cur:
            return None
        cur = cur[key]
    return cur


# ----------------------------------------------------------------------
# Per-benchmark extractors: data -> (pr, headline-median, unit, detail).
# `unit` says what the number means, so the table never lies by
# implication ("overhead ratio" is not a speedup).
# ----------------------------------------------------------------------

def _x_snapshot_fastforward(d):
    modes = {m.get("mode"): m.get("speedup_median")
             for m in d.get("modes", []) if isinstance(m, dict)}
    meds = [v for v in modes.values() if v is not None]
    return 2, (min(meds) if meds else None), "speedup vs cold trials", {
        "per_mode_speedup_median": modes}


def _x_campaign_throughput(d):
    return 3, _get(d, "headline", "speedup_median"), \
        "speedup vs PR 2 engine", {
            "headline_mode": _get(d, "headline", "mode"),
            "headline_workers": _get(d, "headline", "workers")}


def _x_obs_overhead(d):
    return 4, d.get("overhead_fraction"), "traced-overhead fraction", {
        "max_overhead": d.get("max_overhead"),
        "trace_records": d.get("trace_records")}


def _x_convergence_pruning(d):
    apps = {name: _get(row, "pruned_speedup_median")
            for name, row in d.get("apps", {}).items()}
    meds = [v for v in apps.values() if v is not None]
    return 5, (min(meds) if meds else None), \
        "pruned-trial speedup vs unpruned", {
            "per_app_pruned_speedup_median": apps,
            "gate": _get(d, "headline", "gate")}


def _x_chaos_overhead(d):
    return 6, d.get("overhead_ratio_median"), \
        "hardened/bare wall ratio (chaos off)", {"gate": d.get("gate")}


def _x_fork_trials(d):
    app = _get(d, "headline", "gated_app") or "amg"
    return 7, _get(d, "headline", "short_window_speedup_median"), \
        "amg short-window per-trial speedup vs PR 5", {
            "target": _get(d, "headline", "target"),
            "reached_10x_target": _get(d, "headline",
                                       "reached_10x_target"),
            "campaign_ratio_median": _get(d, "apps", app,
                                          "campaign_ratio_median")}


def _x_tier2_compile(d):
    app = _get(d, "headline", "gated_app") or "amg"
    return 8, _get(d, "headline", "short_window_vs_pr5_median"), \
        "amg short-window per-trial speedup vs PR 5", {
            "short_window_vs_pr7_median": _get(
                d, "headline", "short_window_vs_pr7_median"),
            "golden_replay_speedup": _get(
                d, "headline", "golden_replay_speedup"),
            "reached_10x_target": _get(d, "headline",
                                       "reached_10x_target"),
            "reached_2x_over_fork": _get(d, "headline",
                                         "reached_2x_over_fork"),
            "trace_cycle_coverage": _get(
                d, "apps", app, "golden_replay", "trace_cycle_coverage")}


def _x_distributed_fabric(d):
    return 9, d.get("speedup_4_over_1"), \
        "4-shard/1-shard wall speedup (remote fabric)", {
            "reached_2x_at_4_shards": d.get("reached_2x_at_4_shards"),
            "real_app": d.get("real_app")}


def _x_lane_batch(d):
    app = _get(d, "headline", "gated_app") or "amg"
    return 10, _get(d, "headline", "short_window_vs_pr5_median"), \
        "amg short-window per-trial speedup vs PR 5", {
            "best_width": _get(d, "headline", "best_width"),
            "short_window_vs_pr8_median": _get(
                d, "headline", "short_window_vs_pr8_median"),
            "reached_2x_over_pr8": _get(d, "headline",
                                        "reached_2x_over_pr8"),
            "reached_10x_target": _get(d, "headline",
                                       "reached_10x_target"),
            "lane_occupancy": _get(d, "headline", "lane_occupancy"),
            "campaign_ratio_vs_pr8_median": _get(
                d, "apps", app, "lane_ladder",
                str(_get(d, "headline", "best_width")),
                "campaign_ratio_vs_pr8_median")}


def _x_campaigns(d):
    rates = [r.get("trials_per_s") for r in d.get("runs", [])
             if isinstance(r, dict) and r.get("trials_per_s")]
    return 2, None, "raw trials/s inventory", {
        "runs": len(rates),
        "trials_per_s_min": min(rates) if rates else None,
        "trials_per_s_max": max(rates) if rates else None}


EXTRACTORS = {
    "snapshot_fastforward": _x_snapshot_fastforward,
    "campaign_throughput": _x_campaign_throughput,
    "obs_overhead": _x_obs_overhead,
    "convergence_pruning": _x_convergence_pruning,
    "chaos_overhead": _x_chaos_overhead,
    "fork_trials": _x_fork_trials,
    "tier2_compile": _x_tier2_compile,
    "distributed_fabric": _x_distributed_fabric,
    "lane_batch": _x_lane_batch,
    "campaigns": _x_campaigns,
}


def collect(results_dir: Path) -> dict:
    rows = []
    by_name = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == OUT_NAME:
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            rows.append({"file": path.name, "error": str(exc)})
            continue
        name = data.get("benchmark", path.stem)
        by_name[name] = data
        extractor = EXTRACTORS.get(name)
        if extractor is None:
            rows.append({"file": path.name, "benchmark": name, "pr": None,
                         "headline": data.get("headline"),
                         "unit": "unrecognised benchmark", "detail": {}})
            continue
        pr, headline, unit, detail = extractor(data)
        rows.append({"file": path.name, "benchmark": name, "pr": pr,
                     "headline": headline, "unit": unit,
                     "baseline": data.get("baseline")
                     or data.get("baseline_pr5"),
                     "detail": detail})
    rows.sort(key=lambda r: (r.get("pr") is None, r.get("pr") or 0,
                             r["file"]))

    # the one chain whose points share a baseline: amg short-window
    # per-trial medians vs the PR 5 restore/replay trial
    chain = {"baseline": "PR 5 restore/warm clone + armed prefix "
                         "replay (amg, short-window trials)",
             "pr5": 1.0,
             "pr7_fork": _get(by_name.get("fork_trials", {}),
                              "headline", "short_window_speedup_median"),
             "pr8_tier2": _get(by_name.get("tier2_compile", {}),
                               "headline", "short_window_vs_pr5_median"),
             "pr10_lanes": _get(by_name.get("lane_batch", {}),
                                "headline", "short_window_vs_pr5_median"),
             "target": 10.0}
    best = max((v for v in (chain["pr7_fork"], chain["pr8_tier2"],
                            chain["pr10_lanes"])
                if v is not None), default=None)
    chain["best"] = best
    chain["reached_10x_target"] = best is not None and best >= 10.0

    return {"trajectory": "per-PR perf benchmark fold",
            "benchmarks": rows,
            "amg_per_trial_chain": chain}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--results-dir", type=Path, default=RESULTS)
    ap.add_argument("--out", type=Path, default=None,
                    help=f"output path (default <results-dir>/{OUT_NAME})")
    args = ap.parse_args(argv)
    out = args.out or args.results_dir / OUT_NAME

    payload = collect(args.results_dir)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {out}")
    print(f"{'PR':>3}  {'benchmark':<22} {'headline':>9}  unit")
    for row in payload["benchmarks"]:
        if "error" in row:
            print(f"  ?  {row['file']:<22} {'ERROR':>9}  {row['error']}")
            continue
        pr = row["pr"] if row["pr"] is not None else "?"
        head = row["headline"]
        head = f"{head:.2f}" if isinstance(head, (int, float)) else "-"
        print(f"{pr!s:>3}  {row['benchmark']:<22} {head:>9}  {row['unit']}")
    chain = payload["amg_per_trial_chain"]
    print(f"amg per-trial vs PR 5: fork {chain['pr7_fork']}x, "
          f"tier-2 {chain['pr8_tier2']}x, "
          f"lanes {chain['pr10_lanes']}x "
          f"(target {chain['target']}x, "
          f"reached={chain['reached_10x_target']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
