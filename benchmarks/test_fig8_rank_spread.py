"""Fig. 8: propagation of faults across MPI processes.

The paper shows LULESH contaminating all ranks almost immediately (halo
exchange + global reductions every time step) while miniFE stays local
for a long time and then spreads quickly (CG's allreduce).  The benchmark
renders rank-spread step curves for both apps and asserts the contrast:
LULESH's median spread delay (fault -> all ranks) is a much smaller
fraction of the run than miniFE's spread *onset* delay.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import rank_spread_curve, render_table
from conftest import save_artifact


def _spread_metrics(campaign):
    """Per-trial (onset_delay, full_spread_delay) in fractions of the run."""
    onsets, fulls = [], []
    curves = []
    for t in campaign.trials:
        if t.times is None or not t.injected_cycles:
            continue
        if t.ranks_contaminated < 4:
            continue
        t_fault = min(t.injected_cycles)
        curve = rank_spread_curve(t)
        t_two = next((tt for tt, n in curve if n >= 2), None)
        t_all = next((tt for tt, n in curve if n >= 4), None)
        if t_two is None or t_all is None:
            continue
        run_len = max(t.times[-1] - t_fault, 1)
        onsets.append(max(t_two - t_fault, 0) / run_len)
        fulls.append(max(t_all - t_fault, 0) / run_len)
        curves.append((t_fault, curve))
    return onsets, fulls, curves


def test_fig8_rank_spread(benchmark, campaigns, results_dir):
    def run_both():
        return (campaigns.get("lulesh", "fpm"), campaigns.get("minife", "fpm"))

    lulesh, minife = benchmark.pedantic(run_both, rounds=1, iterations=1)

    lul_on, lul_full, lul_curves = _spread_metrics(lulesh)
    mf_on, mf_full, mf_curves = _spread_metrics(minife)

    rows = [
        ["lulesh", len(lul_on),
         f"{np.median(lul_on):.3f}" if lul_on else "-",
         f"{np.median(lul_full):.3f}" if lul_full else "-"],
        ["minife", len(mf_on),
         f"{np.median(mf_on):.3f}" if mf_on else "-",
         f"{np.median(mf_full):.3f}" if mf_full else "-"],
    ]
    text = render_table(
        ["app", "full-spread trials", "median onset delay", "median full delay"],
        rows,
    )
    for name, curves in (("lulesh", lul_curves), ("minife", mf_curves)):
        for t_fault, curve in curves[:2]:
            text += f"\n\n{name}: fault @ {t_fault} cycles; spread " + \
                " -> ".join(f"(t={tt}, ranks={n})" for tt, n in curve)
    text += (
        "\n\npaper: LULESH spreads to all ranks almost immediately; "
        "miniFE stays local, then spreads quickly late in the run"
    )
    save_artifact(results_dir, "fig8_rank_spread.txt", text)

    assert lul_on and mf_on, "need full-spread trials for both apps"
    # LULESH: global energy reduction every step -> near-immediate spread
    assert np.median(lul_full) < 0.25
    # once miniFE starts spreading it finishes fast (allreduce): the gap
    # between first crossing and full spread is small
    gaps = [f - o for o, f in zip(mf_on, mf_full)]
    assert np.median(gaps) < 0.3
