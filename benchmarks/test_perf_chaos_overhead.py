"""Chaos hardening must be free when chaos is off: <5% hot-path overhead.

The corruption-tolerant substrate adds work to the campaign hot path
even with injection disabled: every journal record is length-prefixed
and CRC-framed, every artifact load recomputes a SHA-256 payload hash,
and every IO write runs under the retry policy.  The chaos hooks
themselves must compile down to a single environment lookup.

This benchmark gates that bill:

* **campaign overhead** — the median wall-clock ratio of a fully
  hardened campaign (journal + shared artifacts, chaos off) over a bare
  campaign (no journal, no artifacts) must stay under
  ``OVERHEAD_GATE`` (5%);
* **record framing** — the per-record cost of CRC framing relative to
  the bare JSON encoding it wraps is reported (advisory);
* the campaign walls are recorded next to the
  ``BENCH_convergence_pruning.json`` baseline (advisory context — that
  file is produced on the same class of runner).

Results land in ``benchmarks/results/BENCH_chaos_overhead.json``.
Scale with REPRO_BENCH_TRIALS (default 30) and REPRO_BENCH_REPS
(default 3).
"""

from __future__ import annotations

import json
import statistics
import time

from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int
from repro.inject.journal import _encode_trial

from conftest import SEED

APP = "amg"

#: hard gate: hardened-but-quiet campaign wall over bare campaign wall
OVERHEAD_GATE = 1.05


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 30)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 3)


def _run(n, journal=None, artifact_dir=None):
    campaign_mod._PREPARED_CACHE.clear()
    t0 = time.perf_counter()
    result = run_campaign(APP, n, mode="fpm", seed=SEED, workers=1,
                          journal=str(journal) if journal else None,
                          artifact_dir=artifact_dir)
    return result, time.perf_counter() - t0


def _frame_cost(result):
    """Per-record framing cost: CRC frame encode vs bare JSON encode."""
    from repro.analysis.export import _trial_to_dict

    trials = list(enumerate(result.trials))
    t0 = time.perf_counter()
    for index, trial in trials:
        json.dumps({"index": index, "trial": _trial_to_dict(trial)})
    bare_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for index, trial in trials:
        _encode_trial(index, trial)
    framed_s = time.perf_counter() - t0
    return bare_s, framed_s


def test_perf_chaos_overhead(results_dir, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    n = _bench_trials()
    reps = _bench_reps()
    art_dir = tmp_path / "artifacts"

    # untimed warm-up: bytecode caches + golden profile + artifact file
    _run(n, journal=tmp_path / "warm.jsonl", artifact_dir=art_dir)

    bare_walls, hard_walls = [], []
    bare = hard = None
    for rep in range(reps):
        bare, bw = _run(n)
        hard, hw = _run(n, journal=tmp_path / f"j{rep}.jsonl",
                        artifact_dir=art_dir)
        # gating: hardening must be invisible in the science
        assert bare.fractions() == hard.fractions()
        for i, (a, b) in enumerate(zip(bare.trials, hard.trials)):
            assert trial_results_equal(a, b), (i, a, b)
        bare_walls.append(bw)
        hard_walls.append(hw)

    ratios = [h / max(b, 1e-9) for b, h in zip(bare_walls, hard_walls)]
    ratio_median = statistics.median(ratios)
    bare_enc_s, framed_enc_s = _frame_cost(hard)

    baseline_ctx = None
    pruning_path = results_dir / "BENCH_convergence_pruning.json"
    if pruning_path.exists():
        prior = json.loads(pruning_path.read_text())
        row = prior.get("apps", {}).get(APP)
        if row:
            baseline_ctx = {
                "source": pruning_path.name,
                "candidate_wall_s": row.get("candidate_wall_s"),
            }

    payload = {
        "benchmark": "chaos_overhead",
        "app": APP,
        "seed": SEED,
        "trials": n,
        "reps": reps,
        "baseline": "bare campaign: no journal, no artifact store",
        "candidate": "hardened hot path, chaos off: CRC-framed journal "
                     "+ hash-verified shared artifacts + retry-wrapped IO",
        "bare_wall_s": [round(w, 3) for w in bare_walls],
        "hardened_wall_s": [round(w, 3) for w in hard_walls],
        "overhead_ratios": [round(r, 4) for r in ratios],
        "overhead_ratio_median": round(ratio_median, 4),
        "gate": OVERHEAD_GATE,
        "record_framing": {
            "records": n,
            "bare_json_encode_s": round(bare_enc_s, 5),
            "crc_framed_encode_s": round(framed_enc_s, 5),
            "framing_ratio": round(framed_enc_s / max(bare_enc_s, 1e-9), 3),
        },
        "prior_baseline_context": baseline_ctx,
        "equivalent": True,
    }
    path = results_dir / "BENCH_chaos_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")

    # the hard gate: hardening may cost at most 5% when chaos is off
    assert ratio_median <= OVERHEAD_GATE, payload
