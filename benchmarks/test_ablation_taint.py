"""Ablation: naive taint tracking vs the exact dual chain.

Paper Sec. 3: "the general assumption that the output of an instruction
becomes corrupted if at least one of the inputs is corrupted could lead
to large overestimation of the number of corrupted memory locations.  To
avoid such overestimation ... we replicate the stream of instructions."

This benchmark runs identical fault plans under both shadow analyses and
quantifies the overestimation the dual chain exists to avoid.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.inject import run_campaign

from conftest import SEED, save_artifact, trials, workers


def test_taint_overestimation(benchmark, results_dir):
    apps = ("mcb", "minife", "lulesh")
    n = max(50, trials() // 3)

    def run_all():
        rows = []
        for app in apps:
            dual = run_campaign(app, trials=n, mode="fpm", seed=SEED,
                                workers=workers(), keep_series=True)
            taint = run_campaign(app, trials=n, mode="taint", seed=SEED,
                                 workers=workers(), keep_series=True)
            rows.append((app, dual, taint))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    all_ratios = []
    for app, dual, taint in rows:
        ratios = []
        over = exact_clean_taint_dirty = 0
        for d, t in zip(dual.trials, taint.trials):
            if d.outcome == "C" or t.outcome == "C":
                continue
            if t.peak_cml > d.peak_cml:
                over += 1
            if not d.ever_contaminated and t.ever_contaminated:
                exact_clean_taint_dirty += 1
            if d.peak_cml > 0:
                ratios.append(t.peak_cml / d.peak_cml)
        ratios = np.array(ratios) if ratios else np.array([1.0])
        all_ratios.append(ratios)
        table_rows.append([
            app,
            f"{np.median(ratios):.2f}x",
            f"{ratios.mean():.2f}x",
            f"{ratios.max():.1f}x",
            over,
            exact_clean_taint_dirty,
        ])

    text = render_table(
        ["app", "median CML ratio", "mean", "max",
         "taint > exact", "false contamination"],
        table_rows,
    )
    text += (
        "\n\n'false contamination' = runs the dual chain proves clean "
        "(masked faults)\nthat naive taint flags as corrupted — the "
        "overestimation the paper's design avoids"
    )
    save_artifact(results_dir, "ablation_taint.txt", text)

    # taint must overestimate on a meaningful share of runs for some app
    assert any(r.mean() > 1.2 for r in all_ratios)
    # and must produce false contamination somewhere (masked faults exist)
    assert any(row[5] > 0 for row in table_rows)
    # taint never undercounts by much on average (it is an over-approx of
    # data flow; small undercounts come only from address-flow blindness)
    for r in all_ratios:
        assert np.median(r) >= 0.9
