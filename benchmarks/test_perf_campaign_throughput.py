"""Campaign throughput: shared golden artifacts + snapshot-locality batching.

"Before" is the PR 2 configuration: every driver invocation profiles its
own golden run, every pool worker pays its own fast-forward verification
cold run, trials dispatch in index order, and every restore rebuilds
memory from the sparse snapshot encoding.  "After" is the default PR 3
configuration: the golden profile + snapshot store load from a shared
content-addressed artifact (with a persisted verification marker), armed
trials are batched by nearest-preceding snapshot, workers keep a
prefetch pipeline full, and batched restores clone a warm world.

The only *gating* assertions are equivalence: baseline and candidate
campaigns must be trial-for-trial bit-identical.  Wall-clock numbers are
recorded to ``benchmarks/results/BENCH_campaign_throughput.json`` with
1/2/4/8-worker scaling.  Baseline and candidate run back-to-back in
interleaved pairs and the reported speedup is the *median of per-pair
ratios*: on a virtualised CI box, host steal time drifts absolute wall
clocks by tens of percent between minutes, but adjacent runs see
similar conditions, so pairwise ratios stay stable.

Scale with REPRO_BENCH_APP (default amg), REPRO_BENCH_TRIALS (default
16 — a short re-arm campaign, where preparation overhead matters most)
and REPRO_BENCH_REPS (default 5).
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time

from repro.inject import run_campaign, trial_results_equal
from repro.inject import campaign as campaign_mod
from repro.inject.campaign import _env_int

from conftest import SEED


def _bench_app() -> str:
    return os.environ.get("REPRO_BENCH_APP", "amg")


def _bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 16)


def _bench_reps() -> int:
    return _env_int("REPRO_BENCH_REPS", 5)


def _worker_counts():
    """Worker ladder (REPRO_BENCH_WORKER_LADDER, comma-separated)."""
    raw = os.environ.get("REPRO_BENCH_WORKER_LADDER", "1,2,4,8")
    try:
        counts = tuple(int(w) for w in raw.split(",") if w.strip())
        if counts and all(w >= 1 for w in counts):
            return counts
    except ValueError:
        pass
    return (1, 2, 4, 8)

# the PR 2 engine: no golden artifacts, index-order dispatch, no
# warm-world cache, and one-trial-at-a-time dispatch to pool workers
_PR2_ENV = {"REPRO_BATCH_BY_SNAPSHOT": "0",
            "REPRO_WORLD_CACHE": "0",
            "REPRO_PREFETCH": "1"}


def _run(app, mode, n, workers, artifact_dir, pr2, monkeypatch):
    """One timed campaign in a clean parent process state.

    The prepared cache is cleared so each run pays the full preparation
    path of its configuration — re-profiling for the baseline, artifact
    loading for the candidate — exactly as a fresh driver invocation
    would.
    """
    campaign_mod._PREPARED_CACHE.clear()
    for key in _PR2_ENV:
        monkeypatch.delenv(key, raising=False)
    if pr2:
        for key, value in _PR2_ENV.items():
            monkeypatch.setenv(key, value)
    t0 = time.perf_counter()
    result = run_campaign(app, n, mode=mode, seed=SEED, workers=workers,
                          artifact_dir=artifact_dir)
    wall = time.perf_counter() - t0
    return result, wall


def _measure_mode(app, mode, n, reps, artifact_dir, monkeypatch):
    """Interleaved baseline/candidate runs across the worker ladder."""
    # Untimed warm-ups: JIT/bytecode caches for both paths, and the
    # candidate's artifact + verification marker (a persisted one-time
    # cost any real campaign suite pays exactly once).
    _run(app, mode, n, 1, None, True, monkeypatch)
    _run(app, mode, n, 1, artifact_dir, False, monkeypatch)

    rows = []
    for workers in _worker_counts():
        base_walls, cand_walls = [], []
        for _ in range(reps):
            base, bw = _run(app, mode, n, workers, None, True, monkeypatch)
            cand, cw = _run(app, mode, n, workers, artifact_dir, False,
                            monkeypatch)
            # gating: configurations must be scientifically identical
            assert base.n_trials == cand.n_trials == n
            for a, b in zip(base.trials, cand.trials):
                assert trial_results_equal(a, b), (a, b)
            base_walls.append(bw)
            cand_walls.append(cw)
        base_med = statistics.median(base_walls)
        cand_med = statistics.median(cand_walls)
        ratios = [b / max(c, 1e-9)
                  for b, c in zip(base_walls, cand_walls)]
        rows.append({
            "workers": workers,
            "baseline_wall_s": [round(w, 3) for w in base_walls],
            "candidate_wall_s": [round(w, 3) for w in cand_walls],
            "baseline_median_s": round(base_med, 3),
            "candidate_median_s": round(cand_med, 3),
            "pair_ratios": [round(r, 2) for r in ratios],
            "speedup_median": round(statistics.median(ratios), 2),
            "baseline_trials_per_s": round(n / base_med, 2),
            "candidate_trials_per_s": round(n / cand_med, 2),
            "equivalent": True,
        })
    return rows


def test_perf_campaign_throughput(results_dir, monkeypatch):
    app = _bench_app()
    n = _bench_trials()
    reps = _bench_reps()
    monkeypatch.delenv("REPRO_ARTIFACT_DIR", raising=False)
    with tempfile.TemporaryDirectory(prefix="repro-artifacts-") as art:
        payload = {
            "benchmark": "campaign_throughput",
            "app": app,
            "seed": SEED,
            "trials": n,
            "reps": reps,
            "baseline": "PR 2: per-process golden profiling, per-worker "
                        "verify runs, index-order one-at-a-time dispatch, "
                        "cold restores (REPRO_BATCH_BY_SNAPSHOT=0 "
                        "REPRO_WORLD_CACHE=0 REPRO_PREFETCH=1)",
            "candidate": "shared golden artifact + verification marker + "
                         "snapshot-locality batching + warm-world clones "
                         "+ worker prefetch pipeline (defaults)",
            "modes": {
                mode: _measure_mode(app, mode, n, reps, art, monkeypatch)
                for mode in ("blackbox", "fpm")
            },
        }
        # headline: the paper's primary instrument (fpm dual-chain
        # campaigns) at 4 workers, when the ladder includes it
        fpm4 = next((r for r in payload["modes"]["fpm"]
                     if r["workers"] == 4), None)
        if fpm4 is not None:
            payload["headline"] = {
                "mode": "fpm", "workers": 4,
                "speedup_median": fpm4["speedup_median"],
            }
    path = results_dir / "BENCH_campaign_throughput.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== {path.name} ===\n{json.dumps(payload, indent=2)}\n")
