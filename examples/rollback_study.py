#!/usr/bin/env python
"""Roll-back policy study: the paper's Sec. 5 decision, end to end.

1. Train an FPS model on a fault-injection campaign.
2. Measure empirical detection latency under interval/threshold detectors
   (the paper's footnote-3 Δt, calibrated instead of assumed).
3. Replay a fresh fault set through the checkpoint/roll-back runner under
   three policies and compare risk (contaminated finishes) vs cost
   (re-executed work).

Run:  python examples/rollback_study.py [app] [trials]
"""

import sys

import numpy as np

from repro.analysis import render_table
from repro.apps import get_app
from repro.core.runner import build_program, run_job
from repro.inject import run_campaign
from repro.inject.plan import draw_plan
from repro.models import CMLEstimator, compute_fps
from repro.resilience import (
    AlwaysRollback,
    FPSThresholdPolicy,
    IntervalDetector,
    NeverRollback,
    ResilientRunner,
    ThresholdDetector,
    measure_latency,
)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mcb"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    spec = get_app(app)
    program = build_program(spec.source, "fpm", config=spec.config)
    golden = run_job(program, spec.config)
    print(f"app: {app}, golden run: {golden.cycles} cycles")

    # 1. FPS model
    training = run_campaign(app, trials=trials, mode="fpm", seed=100,
                            keep_series=True)
    fps = compute_fps(app, training.trials)
    estimator = CMLEstimator(fps)
    print(f"trained FPS model: {fps.fps:.3e} CML/cycle "
          f"({fps.n_trials} profiles)")

    # 2. Detection latency (paper footnote 3's delta-t, measured)
    interval = max(4000, golden.cycles // 8)
    print("\ndetection latency (delta-t between fault and detection):")
    rows = []
    for det in (IntervalDetector(interval), ThresholdDetector(5),
                ThresholdDetector(50)):
        rep = measure_latency(det, training.trials)
        label = det.name + (f"({det.min_cml})" if hasattr(det, "min_cml")
                            else f"({interval})")
        rows.append([label, rep.n_detected, rep.n_contaminated,
                     f"{rep.median_latency:.0f}" if rep.n_detected else "-"])
    print(render_table(["detector", "detected", "contaminated runs",
                        "median latency (cycles)"], rows))

    # 3. Policy comparison
    threshold = estimator.fps.fps * golden.cycles * 0.25
    policies = [AlwaysRollback(), NeverRollback(),
                FPSThresholdPolicy(estimator, threshold)]
    rng = np.random.default_rng(7)
    plans = [draw_plan(rng, golden.inj_counts, 1) for _ in range(trials // 2)]

    print(f"\npolicy comparison over {len(plans)} faulty runs "
          f"(checkpoint every {interval} cycles):")
    rows = []
    for policy in policies:
        dirty = wasted = rollbacks = crashes = 0
        for i, plan in enumerate(plans):
            runner = ResilientRunner(program, spec.config, policy,
                                     interval=interval,
                                     expected_end=golden.cycles)
            res = runner.run(faults=plan, inj_seed=i)
            if res.crashed:
                crashes += 1
                continue
            dirty += res.final_contaminated
            wasted += res.wasted_cycles
            rollbacks += res.rollbacks
        rows.append([policy.name, dirty, crashes, rollbacks,
                     f"{wasted / golden.cycles:.2f} runs"])
    print(render_table(
        ["policy", "contaminated finishes", "crashes", "rollbacks",
         "re-executed work"], rows))

    print("\npaper Sec. 5: 'the fault-tolerance system could decide to keep "
          "the application\nrunning if the CML at the end of the application "
          "is predicted to be below a safe threshold.'")


if __name__ == "__main__":
    main()
