#!/usr/bin/env python
"""Quickstart: track one fault through the paper's Fig. 1 example.

Compiles the iterative matrix-vector program with the FPM dual-chain
instrumentation, injects the paper's exact bit flip (A[3][3]: 6 -> 2),
and prints how the corrupted-memory-location count grows per iteration —
reproducing Fig. 1's 25 % / 37.5 % contamination numbers.

Run:  python examples/quickstart.py
"""

from repro.apps.matvec import matvec_source
from repro.core.config import RunConfig
from repro.core.runner import build_program
from repro.vm import FaultSpec, Machine, MachineStatus

STATE_WORDS = 24  # A (16 words) + x (4) + b (4)


def find_a33_store(program):
    """Occurrence index whose injection turns the stored 6 into 2."""
    probe = Machine(program)
    probe.start()
    while probe.run(100_000) is MachineStatus.READY:
        pass
    for occ in range(1, probe.inj_counter + 1):
        m = Machine(program)
        m.arm_faults([FaultSpec(rank=0, occurrence=occ, bit=2, operand=0)])
        m.start()
        while m.run(100_000) is MachineStatus.READY:
            pass
        if m.injection_events and m.injection_events[0].before == 6 \
                and m.injection_events[0].after == 2:
            return occ
    raise SystemExit("A[3][3] store not found")


def main() -> None:
    config = RunConfig(nranks=1, quantum=16, inject_kinds=("arith", "mem"))

    print("compiling Fig. 1 matvec with FPM dual-chain instrumentation...")
    program = build_program(matvec_source(iters=3), "fpm", config=config)

    # fault-free reference
    golden = Machine(program)
    golden.start()
    while golden.run(100_000) is MachineStatus.READY:
        pass
    print(f"fault-free output b2 = {golden.outputs}")

    occ = find_a33_store(program)
    print(f"\ninjecting: flip bit 2 of the register holding A[3][3] "
          f"(occurrence {occ}) -> 6 becomes 2\n")

    m = Machine(program)
    m.arm_faults([FaultSpec(rank=0, occurrence=occ, bit=2, operand=0)])
    m.start()
    last_iter = -1
    while m.run(16) is MachineStatus.READY:
        if m.iteration_count != last_iter:
            last_iter = m.iteration_count
            pct = 100 * m.cml / STATE_WORDS
            print(f"  after iteration {last_iter}: {m.cml:2d} corrupted "
                  f"memory locations ({pct:.1f}% of the state)")

    print(f"\nfaulty output b2 = {m.outputs}")
    print(f"paper's Fig. 1b  = [1760, 1964, 2256, 1086]")
    print(f"\ncontaminated locations and their pristine values:")
    for addr, pristine in sorted(m.fpm.items()):
        print(f"  mem[{addr}] = {m.memory.peek(addr)}  (should be {pristine})")


if __name__ == "__main__":
    main()
