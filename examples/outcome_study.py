#!/usr/bin/env python
"""Fig. 6-style outcome study: black-box vs propagation-aware analysis.

Runs two fault-injection campaigns over the same fault plans on a proxy
application — one black-box (output variation only, the paper's Sec. 4.2)
and one with the FPM (Sec. 4.3) — and shows the paper's headline
contradiction: most runs the black-box analysis calls "correct" actually
carry contaminated memory state.

Run:  python examples/outcome_study.py [app] [trials]
      (default: mcb, 80 trials; try lulesh, amg, minife, lammps)
"""

import sys

from repro import FaultPropagationFramework
from repro.analysis import render_outcome_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mcb"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 80

    fw = FaultPropagationFramework.for_app(app)
    print(f"app: {app}  ({fw.spec.description})")
    print(f"running 2 x {trials} fault-injection trials...\n")

    blackbox = fw.blackbox_campaign(trials=trials, seed=42)
    fpm = fw.fpm_campaign(trials=trials, seed=42, keep_series=False)

    print("black-box (output-variation) classification — paper Sec. 4.2:")
    print(render_outcome_table({app: blackbox.fractions()}, blackbox=True))

    print("\nFPM (propagation-aware) classification — paper Sec. 4.3:")
    print(render_outcome_table({app: fpm.fractions()}, blackbox=False))

    bd = fw.co_breakdown(fpm)
    print(f"\nthe contradiction: of {bd.n_co} runs the black-box analysis "
          f"calls 'correct output',")
    print(f"  {bd.n_ona} ({100 * bd.ona_share:.0f}%) actually finished with "
          f"contaminated memory state (ONA),")
    print(f"  only {bd.n_vanished} were truly clean (Vanished).")
    print("\npaper: 'it would be dangerous to assume that the tested "
          "applications can tolerate\nthe presence of faults while, in "
          "reality, they may produce incorrect results in a\nslightly "
          "different execution context.'")


if __name__ == "__main__":
    main()
