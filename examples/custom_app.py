#!/usr/bin/env python
"""Analyse your own MiniHPC program with the framework.

Writes a small distributed heat-diffusion solver in MiniHPC (the paper's
framework is generic: "we seek a generic methodology that allows the user
to study a larger set of applications"), wires it into the framework, and
runs the full analysis pipeline on it.

Run:  python examples/custom_app.py
"""

from repro import FaultPropagationFramework, RunConfig
from repro.analysis import render_outcome_table

HEAT_SOURCE = """
// 1-D explicit heat diffusion, block-decomposed, halo exchange per step.
func main(rank: int, size: int) {
    var n: int = 20;
    var u: float[20];
    var unew: float[20];
    var hbuf: float[1];
    var hl: float[1];
    var hr: float[1];

    // hot spot in the middle of the global domain
    for (var i: int = 0; i < n; i += 1) {
        var g: int = rank * n + i;
        if (g == size * n / 2) {
            u[i] = 100.0;
        } else {
            u[i] = 0.0;
        }
    }

    var alpha: float = 0.2;
    for (var t: int = 0; t < 30; t += 1) {
        if (rank > 0) {
            hbuf[0] = u[0];
            mpi_send(&hbuf[0], 1, rank - 1, 1);
        }
        if (rank < size - 1) {
            hbuf[0] = u[n - 1];
            mpi_send(&hbuf[0], 1, rank + 1, 2);
        }
        if (rank < size - 1) {
            mpi_recv(&hr[0], 1, rank + 1, 1);
        } else {
            hr[0] = u[n - 1];
        }
        if (rank > 0) {
            mpi_recv(&hl[0], 1, rank - 1, 2);
        } else {
            hl[0] = u[0];
        }
        for (var i: int = 0; i < n; i += 1) {
            var left: float = hl[0];
            var right: float = hr[0];
            if (i > 0) { left = u[i - 1]; }
            if (i < n - 1) { right = u[i + 1]; }
            unew[i] = u[i] + alpha * (left - 2.0 * u[i] + right);
        }
        for (var i: int = 0; i < n; i += 1) { u[i] = unew[i]; }
        mark_iteration();
    }

    var s: float = 0.0;
    for (var i: int = 0; i < n; i += 1) { s += u[i]; }
    emit(s);
    emit(u[n / 2]);
}
"""


def main() -> None:
    fw = FaultPropagationFramework.for_source(
        HEAT_SOURCE,
        name="heat1d",
        config=RunConfig(nranks=4),
        tolerance=0.05,
    )

    print("golden outputs per rank:", fw.golden_outputs())

    campaign = fw.fpm_campaign(trials=60, seed=11)
    print("\noutcomes:")
    print(render_outcome_table({"heat1d": campaign.fractions()},
                               blackbox=False))

    fps = fw.fps_factor(campaign)
    print(f"\nFPS factor of the custom app: {fps.fps:.3e} CML/cycle")

    bd = fw.co_breakdown(campaign)
    if bd.n_co:
        print(f"contaminated share of correct-output runs: "
              f"{100 * bd.ona_share:.0f}%")

    coverage = fw.coverage(campaign)
    print(f"injection uniformity: chi2 p-value = {coverage.p_value:.3f}")


if __name__ == "__main__":
    main()
