#!/usr/bin/env python
"""Propagation modelling: FPS factors and runtime CML estimation.

Reproduces the paper's Sec. 5 workflow end-to-end:

1. run an FPM campaign collecting CML(t) propagation traces,
2. fit each trial's piece-wise (linear -> plateau) profile,
3. aggregate the slopes into the application's FPS factor (Table 2),
4. use Eqs. 1-3 to bound the corrupted state inside a detection window
   and make the paper's roll-back-or-continue decision.

Run:  python examples/propagation_model.py [app] [trials]
"""

import sys

import numpy as np

from repro import FaultPropagationFramework
from repro.analysis import render_series
from repro.models import fit_profile


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mcb"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 80

    fw = FaultPropagationFramework.for_app(app)
    print(f"running {trials} FPM trials on {app}...")
    campaign = fw.fpm_campaign(trials=trials, seed=7)

    # show one representative propagation profile
    best = max(
        (t for t in campaign.trials if t.times is not None),
        key=lambda t: t.peak_cml,
        default=None,
    )
    if best is not None and best.peak_cml > 0:
        print(f"\nrepresentative CML(t) profile "
              f"(outcome {best.outcome}, peak {best.peak_cml} locations, "
              f"{100 * best.peak_cml_fraction:.1f}% of live memory):")
        pts = list(zip(best.times.tolist(), best.cml.tolist()))
        print(render_series(pts))
        onset = min(best.injected_cycles)
        keep = best.times >= onset
        fit = fit_profile(best.times[keep].astype(float),
                          best.cml[keep].astype(float))
        print(f"fitted: slope a = {fit.slope:.3e} CML/cycle "
              f"(paper Eq. 1: CML(t) = a*t + b), R^2 = {fit.r2:.3f}")

    # Table 2 for this app
    fps = fw.fps_factor(campaign)
    print(f"\nFPS factor: {fps.fps:.3e} ± {fps.std:.1e} CML/cycle "
          f"(from {fps.n_trials} propagating trials)")

    # Eqs. 2-3: runtime estimation
    est = fw.estimator(campaign)
    golden_cycles = campaign.golden_cycles
    t1, t2 = 0.25 * golden_cycles, 0.75 * golden_cycles
    window = est.estimate_window(t1, t2)
    print(f"\nscenario: clean check at t1={t1:.0f}, fault detected at "
          f"t2={t2:.0f} cycles")
    print(f"  Eq. 3 worst case: {window.max_cml:.1f} corrupted locations")
    print(f"  average case:     {window.avg_cml:.1f}")

    threshold = 25
    decision = "ROLL BACK" if window.rollback_advised(threshold) else "KEEP RUNNING"
    print(f"  with a {threshold}-location safety threshold: {decision}")
    print("\npaper: 'For application with low FPS ... the fault-tolerance "
          "system could decide\nto keep the application running if the CML "
          "at the end of the application is\npredicted to be below a safe "
          "threshold.'")


if __name__ == "__main__":
    main()
